//! The MMA instructions themselves, functionally emulated.
//!
//! Real FP64 tensor cores (`mma.sync.aligned.m8n8k4...f64`) compute each
//! output element as a chain of IEEE-754 fused multiply-adds over the `k`
//! dimension, seeded with the accumulator:
//! `d = fma(a3, b3, fma(a2, b2, fma(a1, b1, fma(a0, b0, c))))`.
//! [`mma_f64_m8n8k4`] reproduces exactly that order with `f64::mul_add`,
//! so TC results here carry the same rounding behaviour the paper measures
//! (and, as the paper's Observation 7 requires, the CC replacement that
//! issues the same FMA chain on "CUDA cores" is bit-identical).
//!
//! The single-bit `mma.m8n8k128` performs `d[i][j] = c[i][j] +
//! popcount(a_row_i AND b_col_j)` over 128-bit rows/columns.

use std::sync::OnceLock;

use crate::counters::{OpCounters, MMA_F16_FMAS, MMA_F64_FMAS, MMA_TF32_FMAS};
use crate::scalar::{Bf16, MmaGen, Precision, Tf32, F16};

/// Fault-injection switch for the golden-regression harness: when the
/// process environment sets `CUBIE_MMA_PERTURB_ULP` (to anything but
/// `0`), every FP64 MMA accumulation chain flips the last mantissa bit
/// of its result — a one-ulp perturbation that must trip the bit-exact
/// comparison class of `cubie golden check` while leaving every
/// magnitude-level tolerance untouched. Applied identically to the TC
/// chain and its CC replacement so the TC ≡ CC bit-identity invariant
/// (Observation 7, asserted throughout the suite) still holds under
/// injection. Read once per process.
fn perturb_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("CUBIE_MMA_PERTURB_ULP").is_some_and(|v| v != *"0"))
}

/// Flip the last mantissa bit of a finite value: a one-ulp-magnitude
/// change, the smallest representable numerical fault.
#[inline]
pub fn flip_last_ulp(v: f64) -> f64 {
    if v.is_finite() {
        f64::from_bits(v.to_bits() ^ 1)
    } else {
        v
    }
}

/// `f32` analog of [`flip_last_ulp`]: flip the last mantissa bit of a
/// finite single-precision value. The mixed-precision accumulation chains
/// produce `f32` results, so their fault-injection hook must perturb at
/// the `f32` ulp (an `f64`-level flip would vanish in the conversion).
#[inline]
pub fn flip_last_ulp_f32(v: f32) -> f32 {
    if v.is_finite() {
        f32::from_bits(v.to_bits() ^ 1)
    } else {
        v
    }
}

#[inline]
fn perturb_f32(v: f32) -> f32 {
    if perturb_enabled() {
        flip_last_ulp_f32(v)
    } else {
        v
    }
}

/// The arithmetic core shared by every FP64 MMA entry point: one
/// `m8n8k4` chain reading the operands *in place* through row strides —
/// `a` rows at `a0 + i·lda`, `b` rows at `b0 + kk·ldb`, `c` rows at
/// `c0 + i·ldc` — so callers with tile-aligned operands skip the scratch
/// packing entirely. The element order (`i`-major, `j` inner) and the
/// `k`-ascending FMA chain are exactly those of the packed entry points,
/// executed on the active [`crate::simd`] path (bit-identical to scalar
/// on every path — distinct output elements are independent chains, and
/// the SIMD lanes preserve each chain's FMA order). Fault injection
/// applies once per element chain *after* the core, so every caller
/// stays bit-identical no matter which path dispatched it.
#[inline]
#[allow(clippy::too_many_arguments)] // nine scalars beat a one-use struct on this hot path
fn mma_f64_m8n8k4_strided_core(
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
) {
    crate::simd::mma_f64_m8n8k4_strided(a, a0, lda, b, b0, ldb, c, c0, ldc);
    if perturb_enabled() {
        // Each output element closed its FMA chain exactly once above,
        // so the one-ulp flip lands once per chain — the same effect as
        // the pre-SIMD per-element `perturb(acc)` in the scalar loop.
        for i in 0..8 {
            for out in &mut c[c0 + i * ldc..c0 + i * ldc + 8] {
                *out = flip_last_ulp(*out);
            }
        }
    }
}

/// One FP64 `m8n8k4` MMA on row-major matrices:
/// `c (8×8) += a (8×4) · b (4×8)`, with the tensor-core FMA chain per
/// element. Increments `counters.mma_f64`.
#[inline]
pub fn mma_f64_m8n8k4(a: &[f64; 32], b: &[f64; 32], c: &mut [f64; 64], counters: &mut OpCounters) {
    mma_f64_m8n8k4_strided_core(a, 0, 4, b, 0, 8, c, 0, 8);
    counters.mma_f64 += 1;
}

/// One FP64 `m8n8k4` MMA reading its operands in place from larger
/// row-major matrices: the 8×4 `A` tile starts at `a[a0]` with row
/// stride `lda`, the 4×8 `B` tile at `b[b0]` with row stride `ldb`, and
/// the 8×8 accumulator at `c[c0]` with row stride `ldc`. Bit-identical
/// to packing the tiles and calling [`mma_f64_m8n8k4`], without the
/// scratch fills. Increments `counters.mma_f64`.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the strided-core signature plus counters
pub fn mma_f64_m8n8k4_strided(
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
    counters: &mut OpCounters,
) {
    mma_f64_m8n8k4_strided_core(a, a0, lda, b, b0, ldb, c, c0, ldc);
    counters.mma_f64 += 1;
}

/// The CUDA-core replacement of [`mma_f64_m8n8k4`] (the paper's CC
/// variant): identical data layout and arithmetic — the same FMA chain per
/// element — but issued as 256 CUDA-core FMAs instead of one tensor-core
/// instruction. Bit-identical results to the TC version by construction.
///
/// Because each lane owns only one `A` and one `B` fragment element while
/// every output element needs operands from other lanes, the replacement
/// also issues warp shuffles to exchange operands (eight per lane per
/// MMA) — data movement the tensor core performs internally. These are
/// counted as integer/logic lane operations.
#[inline]
pub fn cc_mma_f64_m8n8k4(
    a: &[f64; 32],
    b: &[f64; 32],
    c: &mut [f64; 64],
    counters: &mut OpCounters,
) {
    mma_f64_m8n8k4_strided_core(a, 0, 4, b, 0, 8, c, 0, 8);
    counters.fma_f64 += MMA_F64_FMAS;
    counters.int_ops += MMA_F64_FMAS; // operand shuffles
}

/// Naive reference matmul-accumulate used only by tests, accumulating in
/// the same `k`-ascending order but through separate multiply and add
/// (i.e. *not* fused). Tests use it to show that the fused chain differs
/// from unfused accumulation while agreeing with the CC replacement.
pub fn reference_mma_unfused(a: &[f64; 32], b: &[f64; 32], c: &mut [f64; 64]) {
    for i in 0..8 {
        for j in 0..8 {
            let mut acc = c[i * 8 + j];
            for k in 0..4 {
                acc += a[i * 4 + k] * b[k * 8 + j];
            }
            c[i * 8 + j] = acc;
        }
    }
}

/// One single-bit `m8n8k128` MMA with AND·popc semantics:
/// `c[i][j] += popcount(a[i] & b_col[j])`, where `a[i]` is the 128-bit row
/// `i` of `A` and `b_col[j]` the 128-bit column `j` of `B`.
/// Increments `counters.mma_b1`.
#[inline]
pub fn mma_b1_m8n8k128_and_popc(
    a_rows: &[u128; 8],
    b_cols: &[u128; 8],
    c: &mut [u32; 64],
    counters: &mut OpCounters,
) {
    for i in 0..8 {
        for j in 0..8 {
            c[i * 8 + j] += (a_rows[i] & b_cols[j]).count_ones();
        }
    }
    counters.mma_b1 += 1;
}

/// CUDA-core replacement of the bit MMA: the same AND/popcount work issued
/// as 32-bit integer operations (each 128-bit row-column pair costs four
/// 32-bit AND + four popcounts + accumulation), counted on `int_ops`.
#[inline]
pub fn cc_mma_b1_m8n8k128_and_popc(
    a_rows: &[u128; 8],
    b_cols: &[u128; 8],
    c: &mut [u32; 64],
    counters: &mut OpCounters,
) {
    for i in 0..8 {
        for j in 0..8 {
            c[i * 8 + j] += (a_rows[i] & b_cols[j]).count_ones();
        }
    }
    // 8*8 pairs × (4 AND + 4 POPC + 4 ADD) 32-bit ops.
    counters.int_ops += 8 * 8 * 12;
}

/// One logical 8×8×8 matrix multiply-accumulate, issued as two chained
/// FP64 `m8n8k4` MMAs (`k = 0..4` then `k = 4..8`) — the building block
/// of the Scan/Reduction kernels, whose constant operands are full 8×8
/// matrices. All matrices row-major; `c += a · b`.
#[inline]
pub fn mma_f64_8x8x8(a: &[f64; 64], b: &[f64; 64], c: &mut [f64; 64], counters: &mut OpCounters) {
    // The two k-halves read `a`/`b` in place (k-half `h` is the 8×4 tile
    // at column 4h of `a` and the 4×8 tile at row 4h of `b`) — same FMA
    // chains as packing into scratch, minus the 64 copies per call.
    mma_f64_m8n8k4_strided_core(a, 0, 8, b, 0, 8, c, 0, 8);
    mma_f64_m8n8k4_strided_core(a, 4, 8, b, 32, 8, c, 0, 8);
    counters.mma_f64 += 2;
}

/// CUDA-core replacement of [`mma_f64_8x8x8`] (identical numerics,
/// counted as 512 CUDA-core FMAs).
#[inline]
pub fn cc_mma_f64_8x8x8(
    a: &[f64; 64],
    b: &[f64; 64],
    c: &mut [f64; 64],
    counters: &mut OpCounters,
) {
    mma_f64_m8n8k4_strided_core(a, 0, 8, b, 0, 8, c, 0, 8);
    mma_f64_m8n8k4_strided_core(a, 4, 8, b, 32, 8, c, 0, 8);
    counters.fma_f64 += 2 * MMA_F64_FMAS;
    counters.int_ops += 2 * MMA_F64_FMAS; // operand shuffles
}

/// Multiply an `M×K` by a `K×N` row-major matrix through tiled FP64 MMA
/// instructions, zero-padding ragged edges. This is the building block for
/// warp-level GEMM stages inside the workloads. `c` must be `M×N` and is
/// accumulated into. Dimensions need not be multiples of the tile shape.
pub fn mma_tiled_f64(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    counters: &mut OpCounters,
) {
    assert_eq!(a.len(), m * k, "A must be M×K");
    assert_eq!(b.len(), k * n, "B must be K×N");
    assert_eq!(c.len(), m * n, "C must be M×N");
    if m.is_multiple_of(8)
        && n.is_multiple_of(8)
        && k.is_multiple_of(4)
        && m != 0
        && n != 0
        && k != 0
    {
        mma_tiled_f64_aligned(a, b, c, m, n, k, counters);
        return;
    }
    let mut at = [0.0f64; 32];
    let mut bt = [0.0f64; 32];
    let mut ct = [0.0f64; 64];
    for i0 in (0..m).step_by(8) {
        for j0 in (0..n).step_by(8) {
            ct.fill(0.0);
            for (ii, row) in ct.chunks_exact_mut(8).enumerate() {
                if i0 + ii < m {
                    for (jj, v) in row.iter_mut().enumerate() {
                        if j0 + jj < n {
                            *v = c[(i0 + ii) * n + (j0 + jj)];
                        }
                    }
                }
            }
            for k0 in (0..k).step_by(4) {
                at.fill(0.0);
                bt.fill(0.0);
                for ii in 0..8usize.min(m - i0) {
                    for kk in 0..4usize.min(k - k0) {
                        at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
                    }
                }
                for kk in 0..4usize.min(k - k0) {
                    for jj in 0..8usize.min(n - j0) {
                        bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
                    }
                }
                mma_f64_m8n8k4(&at, &bt, &mut ct, counters);
            }
            for ii in 0..8usize.min(m - i0) {
                for jj in 0..8usize.min(n - j0) {
                    c[(i0 + ii) * n + (j0 + jj)] = ct[ii * 8 + jj];
                }
            }
        }
    }
}

/// Tile-aligned fast path of [`mma_tiled_f64`] (`m % 8 == n % 8 == 0`,
/// `k % 4 == 0`): every tile is interior, so the MMAs read `a`/`b` and
/// accumulate into `c` in place — no scratch zero-fill, no per-element
/// bounds guards, no copy-in/copy-out — and counters are batched per
/// tile-row instead of per MMA. The loop nest (`k0` innermost-outer,
/// element chains inside the core) matches the ragged path exactly, so
/// results are bit-identical, perturbation injection included.
fn mma_tiled_f64_aligned(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    counters: &mut OpCounters,
) {
    let mmas_per_tile_row = (n as u64 / 8) * (k as u64 / 4);
    for i0 in (0..m).step_by(8) {
        for j0 in (0..n).step_by(8) {
            for k0 in (0..k).step_by(4) {
                mma_f64_m8n8k4_strided_core(
                    a,
                    i0 * k + k0,
                    k,
                    b,
                    k0 * n + j0,
                    n,
                    c,
                    i0 * n + j0,
                    n,
                );
            }
        }
        counters.mma_f64 += mmas_per_tile_row;
    }
}

/// The arithmetic core shared by every mixed-precision MMA entry point:
/// `c (m×n, f32) += a (m×k) · b (k×n)` where `a`/`b` hold operand values
/// **already quantized** to the operand format (exact `f64`
/// representations — see [`Precision::quantize`]). Products are exact;
/// accumulation folds each ascending `k = 4` slice with the generation's
/// published semantics ([`MmaGen::dot4_f32`]); [`perturb_f32`] applies
/// once per element chain. `k` must be a multiple of 4.
fn mma_mixed_core(a: &[f64], b: &[f64], c: &mut [f32], m: usize, n: usize, k: usize, gen: MmaGen) {
    debug_assert!(k.is_multiple_of(4));
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for k0 in (0..k).step_by(4) {
                let prods: [f64; 4] =
                    std::array::from_fn(|kk| a[i * k + k0 + kk] * b[(k0 + kk) * n + j]);
                acc = gen.dot4_f32(acc, &prods);
            }
            c[i * n + j] = perturb_f32(acc);
        }
    }
}

/// One FP16 `m16n8k16` MMA on row-major matrices:
/// `c (16×8, f32) += a (16×16, f16) · b (16×8, f16)`, with exact operand
/// products and the per-generation accumulation semantics of `gen`
/// (fused five-term RN dots on Ampere+, serial RZ+FTZ on Volta).
/// Increments `counters.mma_f16`.
pub fn mma_f16_m16n8k16(
    a: &[F16; 256],
    b: &[F16; 128],
    c: &mut [f32; 128],
    gen: MmaGen,
    counters: &mut OpCounters,
) {
    let av = a.map(F16::to_f64);
    let bv = b.map(F16::to_f64);
    mma_mixed_core(&av, &bv, c, 16, 8, 16, gen);
    counters.mma_f16 += 1;
}

/// CUDA-core replacement of [`mma_f16_m16n8k16`]: identical numerics
/// issued as 2048 single-precision FMAs plus operand shuffles
/// (lane-exchange data movement the tensor core performs internally).
pub fn cc_mma_f16_m16n8k16(
    a: &[F16; 256],
    b: &[F16; 128],
    c: &mut [f32; 128],
    gen: MmaGen,
    counters: &mut OpCounters,
) {
    let av = a.map(F16::to_f64);
    let bv = b.map(F16::to_f64);
    mma_mixed_core(&av, &bv, c, 16, 8, 16, gen);
    counters.fma_f32 += MMA_F16_FMAS;
    counters.int_ops += MMA_F16_FMAS; // operand shuffles
}

/// One BF16 `m16n8k16` MMA (same shape and accumulation semantics as
/// [`mma_f16_m16n8k16`], bfloat16 operands). Increments
/// `counters.mma_bf16`.
pub fn mma_bf16_m16n8k16(
    a: &[Bf16; 256],
    b: &[Bf16; 128],
    c: &mut [f32; 128],
    gen: MmaGen,
    counters: &mut OpCounters,
) {
    let av = a.map(Bf16::to_f64);
    let bv = b.map(Bf16::to_f64);
    mma_mixed_core(&av, &bv, c, 16, 8, 16, gen);
    counters.mma_bf16 += 1;
}

/// CUDA-core replacement of [`mma_bf16_m16n8k16`].
pub fn cc_mma_bf16_m16n8k16(
    a: &[Bf16; 256],
    b: &[Bf16; 128],
    c: &mut [f32; 128],
    gen: MmaGen,
    counters: &mut OpCounters,
) {
    let av = a.map(Bf16::to_f64);
    let bv = b.map(Bf16::to_f64);
    mma_mixed_core(&av, &bv, c, 16, 8, 16, gen);
    counters.fma_f32 += MMA_F16_FMAS;
    counters.int_ops += MMA_F16_FMAS; // operand shuffles
}

/// One TF32 `m16n8k8` MMA on row-major matrices:
/// `c (16×8, f32) += a (16×8, tf32) · b (8×8, tf32)` — the half-`k`
/// shape real TF32 units expose. Increments `counters.mma_tf32`.
pub fn mma_tf32_m16n8k8(
    a: &[Tf32; 128],
    b: &[Tf32; 64],
    c: &mut [f32; 128],
    gen: MmaGen,
    counters: &mut OpCounters,
) {
    let av = a.map(Tf32::to_f64);
    let bv = b.map(Tf32::to_f64);
    mma_mixed_core(&av, &bv, c, 16, 8, 8, gen);
    counters.mma_tf32 += 1;
}

/// CUDA-core replacement of [`mma_tf32_m16n8k8`] (1024 f32 FMAs plus
/// operand shuffles).
pub fn cc_mma_tf32_m16n8k8(
    a: &[Tf32; 128],
    b: &[Tf32; 64],
    c: &mut [f32; 128],
    gen: MmaGen,
    counters: &mut OpCounters,
) {
    let av = a.map(Tf32::to_f64);
    let bv = b.map(Tf32::to_f64);
    mma_mixed_core(&av, &bv, c, 16, 8, 8, gen);
    counters.fma_f32 += MMA_TF32_FMAS;
    counters.int_ops += MMA_TF32_FMAS; // operand shuffles
}

/// Multiply an `M×K` by a `K×N` row-major matrix through tiled
/// mixed-precision MMAs, zero-padding ragged edges — the reduced-precision
/// sibling of [`mma_tiled_f64`]. `a` and `b` hold values **already
/// quantized** to `precision` (see [`Precision::quantize`]); `c` is the
/// `f32` accumulator. With `cc = false` the work is counted as tensor-core
/// MMA instructions, with `cc = true` as the CUDA-core replacement
/// (bit-identical numerics either way, per Observation 7).
///
/// # Panics
///
/// Panics if `precision` is [`Precision::F64`] (use [`mma_tiled_f64`]).
#[allow(clippy::too_many_arguments)] // mirrors mma_tiled_f64 plus the precision axis
pub fn mma_tiled_mixed(
    precision: Precision,
    gen: MmaGen,
    a: &[f64],
    b: &[f64],
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    cc: bool,
    counters: &mut OpCounters,
) {
    assert_eq!(a.len(), m * k, "A must be M×K");
    assert_eq!(b.len(), k * n, "B must be K×N");
    assert_eq!(c.len(), m * n, "C must be M×N");
    let kt = match precision {
        Precision::F64 => panic!("mma_tiled_mixed models reduced precisions; use mma_tiled_f64"),
        Precision::F16 | Precision::Bf16 => 16,
        Precision::Tf32 => 8,
    };
    let mut at = vec![0.0f64; 16 * kt];
    let mut bt = vec![0.0f64; kt * 8];
    let mut ct = [0.0f32; 128];
    for i0 in (0..m).step_by(16) {
        for j0 in (0..n).step_by(8) {
            ct.fill(0.0);
            for ii in 0..16usize.min(m - i0) {
                for jj in 0..8usize.min(n - j0) {
                    ct[ii * 8 + jj] = c[(i0 + ii) * n + (j0 + jj)];
                }
            }
            for k0 in (0..k).step_by(kt) {
                at.fill(0.0);
                bt.fill(0.0);
                for ii in 0..16usize.min(m - i0) {
                    for kk in 0..kt.min(k - k0) {
                        at[ii * kt + kk] = a[(i0 + ii) * k + (k0 + kk)];
                    }
                }
                for kk in 0..kt.min(k - k0) {
                    for jj in 0..8usize.min(n - j0) {
                        bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
                    }
                }
                mma_mixed_core(&at, &bt, &mut ct, 16, 8, kt, gen);
                match (precision, cc) {
                    (Precision::F16, false) => counters.mma_f16 += 1,
                    (Precision::Bf16, false) => counters.mma_bf16 += 1,
                    (Precision::Tf32, false) => counters.mma_tf32 += 1,
                    (Precision::Tf32, true) => {
                        counters.fma_f32 += MMA_TF32_FMAS;
                        counters.int_ops += MMA_TF32_FMAS;
                    }
                    (_, true) => {
                        counters.fma_f32 += MMA_F16_FMAS;
                        counters.int_ops += MMA_F16_FMAS;
                    }
                    (Precision::F64, _) => unreachable!(),
                }
            }
            for ii in 0..16usize.min(m - i0) {
                for jj in 0..8usize.min(n - j0) {
                    c[(i0 + ii) * n + (j0 + jj)] = ct[ii * 8 + jj];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::LcgF64;

    fn random_tile(seed: u64) -> ([f64; 32], [f64; 32], [f64; 64]) {
        let mut g = LcgF64::new(seed);
        let mut a = [0.0; 32];
        let mut b = [0.0; 32];
        let mut c = [0.0; 64];
        g.fill(&mut a);
        g.fill(&mut b);
        g.fill(&mut c);
        (a, b, c)
    }

    #[test]
    fn mma_matches_exact_small_integers() {
        // Integer-valued inputs are exact in f64 whether fused or not.
        let mut a = [0.0; 32];
        let mut b = [0.0; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = (i % 5) as f64;
        }
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i * 3) % 7) as f64;
        }
        let mut c = [1.0; 64];
        let mut cref = [1.0; 64];
        let mut ctr = OpCounters::new();
        mma_f64_m8n8k4(&a, &b, &mut c, &mut ctr);
        reference_mma_unfused(&a, &b, &mut cref);
        assert_eq!(c, cref);
        assert_eq!(ctr.mma_f64, 1);
    }

    #[test]
    fn cc_replacement_is_bit_identical_to_tc() {
        for seed in 1..20 {
            let (a, b, c0) = random_tile(seed);
            let mut c_tc = c0;
            let mut c_cc = c0;
            let mut k1 = OpCounters::new();
            let mut k2 = OpCounters::new();
            mma_f64_m8n8k4(&a, &b, &mut c_tc, &mut k1);
            cc_mma_f64_m8n8k4(&a, &b, &mut c_cc, &mut k2);
            assert_eq!(c_tc, c_cc, "TC and CC must agree bit-for-bit");
            assert_eq!(k1.mma_f64, 1);
            assert_eq!(k2.fma_f64, 256);
            assert_eq!(k1.tc_flops(), k2.cc_flops());
        }
    }

    #[test]
    fn fused_chain_can_differ_from_unfused() {
        // Find at least one random tile where fused and unfused rounding
        // differ — demonstrating the MMA semantics are genuinely fused.
        let mut any_diff = false;
        for seed in 1..200 {
            let (a, b, c0) = random_tile(seed);
            let mut cf = c0;
            let mut cu = c0;
            let mut ctr = OpCounters::new();
            mma_f64_m8n8k4(&a, &b, &mut cf, &mut ctr);
            reference_mma_unfused(&a, &b, &mut cu);
            if cf != cu {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "fused MMA never differed from unfused reference");
    }

    #[test]
    fn ulp_flip_is_one_ulp_and_involutive() {
        // The golden harness relies on the injected fault being exactly
        // one ulp: detectable by the bit-exact class, invisible to any
        // sane relative tolerance.
        for v in [1.0, -2.5, 3.119e-13, 1e300] {
            let f = flip_last_ulp(v);
            assert_ne!(f.to_bits(), v.to_bits());
            assert_eq!(f.to_bits() ^ 1, v.to_bits());
            assert_eq!(flip_last_ulp(f).to_bits(), v.to_bits());
            assert!(((f - v) / v).abs() < 1e-15, "flip moved more than ~1 ulp");
        }
        assert_eq!(flip_last_ulp(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn ulp_flip_edge_cases() {
        // ±0 flips to the smallest subnormal of matching sign (bit 0 set).
        assert_eq!(flip_last_ulp(0.0).to_bits(), 1);
        assert_eq!(flip_last_ulp(-0.0).to_bits(), (1u64 << 63) | 1);
        // The smallest subnormal flips back to (+)zero — involutive.
        let tiny = f64::from_bits(1);
        assert_eq!(flip_last_ulp(tiny), 0.0);
        assert_eq!(flip_last_ulp(flip_last_ulp(tiny)).to_bits(), tiny.to_bits());
        // Interior subnormals stay subnormal and move exactly one step.
        let sub = f64::from_bits(0x000f_ffff_ffff_fffe);
        assert!(sub.is_subnormal());
        assert_eq!(flip_last_ulp(sub).to_bits(), sub.to_bits() | 1);
        // MAX flips *down* one ulp (mantissa all-ones), staying finite.
        let m = flip_last_ulp(f64::MAX);
        assert!(m.is_finite() && m < f64::MAX);
        assert_eq!(flip_last_ulp(m), f64::MAX);
        // Infinities pass through untouched.
        assert_eq!(flip_last_ulp(f64::INFINITY), f64::INFINITY);
        assert_eq!(flip_last_ulp(f64::NEG_INFINITY), f64::NEG_INFINITY);
        // NaNs pass through with their payload bits intact.
        let payload_nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(flip_last_ulp(payload_nan).to_bits(), payload_nan.to_bits());
    }

    #[test]
    fn ulp_flip_f32_edge_cases() {
        assert_eq!(flip_last_ulp_f32(0.0).to_bits(), 1);
        assert_eq!(flip_last_ulp_f32(-0.0).to_bits(), (1u32 << 31) | 1);
        let tiny = f32::from_bits(1);
        assert_eq!(flip_last_ulp_f32(tiny), 0.0);
        let m = flip_last_ulp_f32(f32::MAX);
        assert!(m.is_finite() && m < f32::MAX);
        assert_eq!(flip_last_ulp_f32(m), f32::MAX);
        assert_eq!(flip_last_ulp_f32(f32::INFINITY), f32::INFINITY);
        let payload_nan = f32::from_bits(0x7fc0_0042);
        assert_eq!(
            flip_last_ulp_f32(payload_nan).to_bits(),
            payload_nan.to_bits()
        );
        // One-ulp magnitude on ordinary values, involutive.
        for v in [1.0f32, -2.5, 3.119e-13, 1e38] {
            let f = flip_last_ulp_f32(v);
            assert_eq!(f.to_bits() ^ 1, v.to_bits());
            assert_eq!(flip_last_ulp_f32(f).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn bit_mma_counts_intersections() {
        let mut a = [0u128; 8];
        let mut b = [0u128; 8];
        a[0] = 0b1011;
        b[0] = 0b0011;
        a[7] = u128::MAX;
        b[7] = u128::MAX;
        let mut c = [0u32; 64];
        let mut ctr = OpCounters::new();
        mma_b1_m8n8k128_and_popc(&a, &b, &mut c, &mut ctr);
        assert_eq!(c[0], 2); // popc(1011 & 0011) = 2
        assert_eq!(c[7 * 8 + 7], 128);
        assert_eq!(c[7], 3); // row 0, col 7: a[0] & full = 3 bits
        assert_eq!(ctr.mma_b1, 1);
    }

    #[test]
    fn bit_mma_accumulates() {
        let a = [1u128; 8];
        let b = [1u128; 8];
        let mut c = [0u32; 64];
        let mut ctr = OpCounters::new();
        mma_b1_m8n8k128_and_popc(&a, &b, &mut c, &mut ctr);
        mma_b1_m8n8k128_and_popc(&a, &b, &mut c, &mut ctr);
        assert!(c.iter().all(|&v| v == 2));
    }

    #[test]
    fn tiled_mma_matches_naive_matmul() {
        let (m, n, k) = (13, 9, 10); // deliberately ragged
        let mut g = LcgF64::new(3);
        let a = g.vec(m * k);
        let b = g.vec(k * n);
        let mut c = vec![0.0; m * n];
        let mut ctr = OpCounters::new();
        mma_tiled_f64(&a, &b, &mut c, m, n, k, &mut ctr);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
                }
                let d = (c[i * n + j] - acc).abs();
                assert!(d < 1e-12, "({i},{j}) differs by {d}");
            }
        }
        // ceil(13/8)=2, ceil(9/8)=2, ceil(10/4)=3 tiles.
        assert_eq!(ctr.mma_f64, 2 * 2 * 3);
    }

    /// The pre-fast-path tiled algorithm: pack every tile into scratch
    /// (zero-padded) and go through the packed MMA entry point. Kept as
    /// the reference the aligned fast path must match bit-for-bit.
    fn tiled_ref_packed(
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        m: usize,
        n: usize,
        k: usize,
        counters: &mut OpCounters,
    ) {
        let mut at = [0.0f64; 32];
        let mut bt = [0.0f64; 32];
        let mut ct = [0.0f64; 64];
        for i0 in (0..m).step_by(8) {
            for j0 in (0..n).step_by(8) {
                ct.fill(0.0);
                for (ii, row) in ct.chunks_exact_mut(8).enumerate() {
                    if i0 + ii < m {
                        for (jj, v) in row.iter_mut().enumerate() {
                            if j0 + jj < n {
                                *v = c[(i0 + ii) * n + (j0 + jj)];
                            }
                        }
                    }
                }
                for k0 in (0..k).step_by(4) {
                    at.fill(0.0);
                    bt.fill(0.0);
                    for ii in 0..8usize.min(m - i0) {
                        for kk in 0..4usize.min(k - k0) {
                            at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
                        }
                    }
                    for kk in 0..4usize.min(k - k0) {
                        for jj in 0..8usize.min(n - j0) {
                            bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
                        }
                    }
                    mma_f64_m8n8k4(&at, &bt, &mut ct, counters);
                }
                for ii in 0..8usize.min(m - i0) {
                    for jj in 0..8usize.min(n - j0) {
                        c[(i0 + ii) * n + (j0 + jj)] = ct[ii * 8 + jj];
                    }
                }
            }
        }
    }

    #[test]
    fn aligned_fast_path_is_bit_identical_to_packed_path() {
        // Tile-aligned shapes take the strided fast path; it must agree
        // with the packing reference to the last bit, counters included.
        for (seed, (m, n, k)) in [(8, 8, 4), (16, 8, 8), (24, 16, 12), (40, 32, 20)]
            .into_iter()
            .enumerate()
        {
            let mut g = LcgF64::new(seed as u64 + 11);
            let a = g.vec(m * k);
            let b = g.vec(k * n);
            let c0 = g.vec(m * n); // nonzero accumulator exercises seeding
            let mut c_fast = c0.clone();
            let mut c_ref = c0.clone();
            let mut k_fast = OpCounters::new();
            let mut k_ref = OpCounters::new();
            mma_tiled_f64(&a, &b, &mut c_fast, m, n, k, &mut k_fast);
            tiled_ref_packed(&a, &b, &mut c_ref, m, n, k, &mut k_ref);
            for (i, (x, y)) in c_fast.iter().zip(&c_ref).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "({m}x{n}x{k}) element {i}: fast path diverged from packed"
                );
            }
            assert_eq!(k_fast.mma_f64, k_ref.mma_f64, "MMA count must not change");
        }
    }

    #[test]
    fn strided_mma_matches_packed_mma() {
        // A 16×12 / 12×24 problem; take the tile at (8, 8)..(16, 16) and
        // k-rows 4..8, both packed and strided.
        let mut g = LcgF64::new(5);
        let (m, n, k) = (16, 24, 12);
        let a = g.vec(m * k);
        let b = g.vec(k * n);
        let c0 = g.vec(m * n);
        let (i0, j0, k0) = (8, 8, 4);
        let mut at = [0.0; 32];
        let mut bt = [0.0; 32];
        let mut ct = [0.0; 64];
        for ii in 0..8 {
            for kk in 0..4 {
                at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
            }
        }
        for kk in 0..4 {
            for jj in 0..8 {
                bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
            }
        }
        for ii in 0..8 {
            for jj in 0..8 {
                ct[ii * 8 + jj] = c0[(i0 + ii) * n + (j0 + jj)];
            }
        }
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f64_m8n8k4(&at, &bt, &mut ct, &mut k1);
        let mut c = c0.clone();
        mma_f64_m8n8k4_strided(
            &a,
            i0 * k + k0,
            k,
            &b,
            k0 * n + j0,
            n,
            &mut c,
            i0 * n + j0,
            n,
            &mut k2,
        );
        for ii in 0..8 {
            for jj in 0..8 {
                assert_eq!(
                    c[(i0 + ii) * n + (j0 + jj)].to_bits(),
                    ct[ii * 8 + jj].to_bits(),
                    "strided MMA diverged from packed at ({ii},{jj})"
                );
            }
        }
        assert_eq!(k1.mma_f64, 1);
        assert_eq!(k2.mma_f64, 1);
    }

    #[test]
    fn tiled_mma_accumulates_into_c() {
        let (m, n, k) = (8, 8, 4);
        let a = vec![1.0; m * k];
        let b = vec![1.0; k * n];
        let mut c = vec![10.0; m * n];
        let mut ctr = OpCounters::new();
        mma_tiled_f64(&a, &b, &mut c, m, n, k, &mut ctr);
        assert!(c.iter().all(|&v| (v - 14.0).abs() < 1e-15));
    }
}

#[cfg(test)]
mod tests_mixed {
    use super::*;
    use crate::rng::LcgF64;

    fn quantized(seed: u64, n: usize, p: Precision) -> Vec<f64> {
        let mut g = LcgF64::new(seed);
        (0..n).map(|_| p.quantize(g.next_f64())).collect()
    }

    #[test]
    fn mixed_cc_is_bit_identical_to_tc() {
        // Observation 7 extends to every reduced precision: the CC
        // replacement reproduces the TC chain bit-for-bit, on both
        // generations' semantics.
        for gen in [MmaGen::Volta, MmaGen::Ampere] {
            let a: [F16; 256] = std::array::from_fn({
                let v = quantized(11, 256, Precision::F16);
                move |i| F16::from_f64_rn(v[i])
            });
            let b: [F16; 128] = std::array::from_fn({
                let v = quantized(12, 128, Precision::F16);
                move |i| F16::from_f64_rn(v[i])
            });
            let mut c_tc = [0.5f32; 128];
            let mut c_cc = [0.5f32; 128];
            let mut k1 = OpCounters::new();
            let mut k2 = OpCounters::new();
            mma_f16_m16n8k16(&a, &b, &mut c_tc, gen, &mut k1);
            cc_mma_f16_m16n8k16(&a, &b, &mut c_cc, gen, &mut k2);
            assert_eq!(c_tc.map(f32::to_bits), c_cc.map(f32::to_bits));
            assert_eq!(k1.mma_f16, 1);
            assert_eq!(k2.fma_f32, MMA_F16_FMAS);
            assert_eq!(k1.tc_f16_flops(), k2.cc_f32_flops());

            let ab: [Bf16; 256] = std::array::from_fn({
                let v = quantized(13, 256, Precision::Bf16);
                move |i| Bf16::from_f64_rn(v[i])
            });
            let bb: [Bf16; 128] = std::array::from_fn({
                let v = quantized(14, 128, Precision::Bf16);
                move |i| Bf16::from_f64_rn(v[i])
            });
            let mut c_tc = [0.0f32; 128];
            let mut c_cc = [0.0f32; 128];
            let mut k3 = OpCounters::new();
            let mut k4 = OpCounters::new();
            mma_bf16_m16n8k16(&ab, &bb, &mut c_tc, gen, &mut k3);
            cc_mma_bf16_m16n8k16(&ab, &bb, &mut c_cc, gen, &mut k4);
            assert_eq!(c_tc.map(f32::to_bits), c_cc.map(f32::to_bits));
            assert_eq!(k3.mma_bf16, 1);

            let at: [Tf32; 128] = std::array::from_fn({
                let v = quantized(15, 128, Precision::Tf32);
                move |i| Tf32::from_f64_rn(v[i])
            });
            let bt: [Tf32; 64] = std::array::from_fn({
                let v = quantized(16, 64, Precision::Tf32);
                move |i| Tf32::from_f64_rn(v[i])
            });
            let mut c_tc = [0.0f32; 128];
            let mut c_cc = [0.0f32; 128];
            let mut k5 = OpCounters::new();
            let mut k6 = OpCounters::new();
            mma_tf32_m16n8k8(&at, &bt, &mut c_tc, gen, &mut k5);
            cc_mma_tf32_m16n8k8(&at, &bt, &mut c_cc, gen, &mut k6);
            assert_eq!(c_tc.map(f32::to_bits), c_cc.map(f32::to_bits));
            assert_eq!(k5.mma_tf32, 1);
            assert_eq!(k6.fma_f32, MMA_TF32_FMAS);
        }
    }

    #[test]
    fn tiled_mixed_matches_entry_point_on_exact_shape() {
        // A single 16×8×16 problem must go through the identical chain as
        // the warp-level entry point.
        let av = quantized(21, 16 * 16, Precision::F16);
        let bv = quantized(22, 16 * 8, Precision::F16);
        let a: [F16; 256] = std::array::from_fn(|i| F16::from_f64_rn(av[i]));
        let b: [F16; 128] = std::array::from_fn(|i| F16::from_f64_rn(bv[i]));
        let mut c_entry = [0.0f32; 128];
        let mut k1 = OpCounters::new();
        mma_f16_m16n8k16(&a, &b, &mut c_entry, MmaGen::Ampere, &mut k1);
        let mut c_tiled = vec![0.0f32; 128];
        let mut k2 = OpCounters::new();
        mma_tiled_mixed(
            Precision::F16,
            MmaGen::Ampere,
            &av,
            &bv,
            &mut c_tiled,
            16,
            8,
            16,
            false,
            &mut k2,
        );
        assert_eq!(c_entry.to_vec(), c_tiled);
        assert_eq!(k2.mma_f16, 1);
    }

    #[test]
    fn tiled_mixed_approximates_f64_matmul_within_format_error() {
        // Relative error scales: ~2^-11 per f16/tf32 rounding, ~2^-8 for
        // bf16, times the k-deep accumulation; generous bounds below.
        for (p, tol) in [
            (Precision::F16, 2e-2),
            (Precision::Bf16, 1e-1),
            (Precision::Tf32, 2e-2),
        ] {
            let (m, n, k) = (33, 17, 21); // ragged on every axis
            let mut g = LcgF64::new(99);
            let a = g.vec(m * k);
            let b = g.vec(k * n);
            let aq: Vec<f64> = a.iter().map(|&v| p.quantize(v)).collect();
            let bq: Vec<f64> = b.iter().map(|&v| p.quantize(v)).collect();
            let mut c = vec![0.0f32; m * n];
            let mut ctr = OpCounters::new();
            mma_tiled_mixed(
                p,
                MmaGen::Ampere,
                &aq,
                &bq,
                &mut c,
                m,
                n,
                k,
                false,
                &mut ctr,
            );
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    let d = (c[i * n + j] as f64 - acc).abs();
                    assert!(
                        d < tol * acc.abs().max(1.0),
                        "{p}: ({i},{j}) differs by {d:.3e}"
                    );
                }
            }
            // ceil(33/16)·ceil(17/8)·ceil(21/kt) tiles.
            let kt = if p == Precision::Tf32 { 8 } else { 16 };
            let want = 3 * 3 * (21usize.div_ceil(kt)) as u64;
            let got = ctr.mma_f16 + ctr.mma_bf16 + ctr.mma_tf32;
            assert_eq!(got, want, "{p}: tile count");
        }
    }

    #[test]
    fn tiled_mixed_cc_and_tc_agree_on_ragged_shapes() {
        for p in [Precision::F16, Precision::Bf16, Precision::Tf32] {
            let (m, n, k) = (19, 11, 13);
            let aq = quantized(31, m * k, p);
            let bq = quantized(32, k * n, p);
            let mut c_tc = vec![0.25f32; m * n];
            let mut c_cc = vec![0.25f32; m * n];
            let mut k1 = OpCounters::new();
            let mut k2 = OpCounters::new();
            mma_tiled_mixed(
                p,
                MmaGen::Ampere,
                &aq,
                &bq,
                &mut c_tc,
                m,
                n,
                k,
                false,
                &mut k1,
            );
            mma_tiled_mixed(
                p,
                MmaGen::Ampere,
                &aq,
                &bq,
                &mut c_cc,
                m,
                n,
                k,
                true,
                &mut k2,
            );
            assert_eq!(c_tc, c_cc, "{p}: TC/CC divergence");
            assert_eq!(k2.mma_f16 + k2.mma_bf16 + k2.mma_tf32, 0);
            assert!(k2.fma_f32 > 0);
        }
    }
}

#[cfg(test)]
mod tests_8x8x8 {
    use super::*;
    use crate::rng::LcgF64;

    #[test]
    fn logical_8x8x8_matches_naive() {
        let mut g = LcgF64::new(77);
        let mut a = [0.0f64; 64];
        let mut b = [0.0f64; 64];
        let mut c = [0.0f64; 64];
        g.fill(&mut a);
        g.fill(&mut b);
        g.fill(&mut c);
        let mut got = c;
        let mut ctr = OpCounters::new();
        mma_f64_8x8x8(&a, &b, &mut got, &mut ctr);
        assert_eq!(ctr.mma_f64, 2);
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = c[i * 8 + j];
                for k in 0..8 {
                    acc = a[i * 8 + k].mul_add(b[k * 8 + j], acc);
                }
                assert!((got[i * 8 + j] - acc).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cc_8x8x8_is_bit_identical() {
        let mut g = LcgF64::new(13);
        let mut a = [0.0f64; 64];
        let mut b = [0.0f64; 64];
        g.fill(&mut a);
        g.fill(&mut b);
        let mut c1 = [1.0f64; 64];
        let mut c2 = [1.0f64; 64];
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f64_8x8x8(&a, &b, &mut c1, &mut k1);
        cc_mma_f64_8x8x8(&a, &b, &mut c2, &mut k2);
        assert_eq!(c1, c2);
        assert_eq!(k2.fma_f64, 512);
        assert_eq!(k2.mma_f64, 0);
    }
}
