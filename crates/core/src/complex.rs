//! Minimal double-precision complex arithmetic for the FFT workload.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A double-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// `e^{i theta}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiply-accumulate: `self + a * b` using real FMA-style grouping
    /// (four real multiplies, as the tensor-core complex-GEMM mapping
    /// performs them).
    #[inline]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        Self {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_definition() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -4.0);
        let c = a * b;
        assert_eq!(c, C64::new(11.0, 2.0));
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let z = C64::cis(k as f64 * 0.3);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conj_negates_imag() {
        let z = C64::new(0.5, -0.25).conj();
        assert_eq!(z, C64::new(0.5, 0.25));
    }

    #[test]
    fn mul_add_matches_composed_ops() {
        let c = C64::new(1.0, 1.0);
        let a = C64::new(2.0, -1.0);
        let b = C64::new(0.5, 3.0);
        let fused = c.mul_add(a, b);
        let composed = c + a * b;
        assert!((fused.re - composed.re).abs() < 1e-15);
        assert!((fused.im - composed.im).abs() < 1e-15);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = C64::new(1.25, -0.5);
        let b = C64::new(-2.0, 0.75);
        let r = (a + b) - b;
        assert!((r.re - a.re).abs() < 1e-15 && (r.im - a.im).abs() < 1e-15);
    }
}
