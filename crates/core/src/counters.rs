//! Operation counters.
//!
//! Every Cubie kernel variant both *computes* its result and *counts* the
//! operations a GPU implementation would issue: tensor-core MMA
//! instructions, CUDA-core floating-point operations, and memory traffic by
//! coalescing class. The counters are the contract between the functional
//! kernels (`cubie-kernels`) and the timing/power/roofline models
//! (`cubie-sim`): a kernel's analytic `trace()` must produce exactly the
//! counters its functional `run()` records, which is enforced by
//! cross-crate tests.

use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Global-memory traffic split by access regularity.
///
/// The coalescing class determines the effective fraction of DRAM bandwidth
/// an access stream achieves in the memory model: fully `coalesced` streams
/// approach peak bandwidth, `strided` streams waste part of each transaction
/// sector, and `random` (gather/scatter) streams pay close to one
/// transaction per element. Observation 8 of the paper — MMU-oriented data
/// layouts regularize memory access — shows up here as baseline kernels
/// recording `strided`/`random` bytes where TC kernels record `coalesced`
/// ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTraffic {
    /// Bytes moved by fully coalesced (unit-stride, aligned) accesses.
    pub coalesced: u64,
    /// Bytes moved by strided or partially coalesced accesses.
    pub strided: u64,
    /// Bytes moved by random gather/scatter accesses.
    pub random: u64,
}

impl MemTraffic {
    /// A single fully coalesced stream of `bytes`.
    pub const fn coalesced(bytes: u64) -> Self {
        Self {
            coalesced: bytes,
            strided: 0,
            random: 0,
        }
    }

    /// A single strided stream of `bytes`.
    pub const fn strided(bytes: u64) -> Self {
        Self {
            coalesced: 0,
            strided: bytes,
            random: 0,
        }
    }

    /// A single random-access stream of `bytes`.
    pub const fn random(bytes: u64) -> Self {
        Self {
            coalesced: 0,
            strided: 0,
            random: bytes,
        }
    }

    /// Total bytes regardless of class.
    pub const fn total(&self) -> u64 {
        self.coalesced + self.strided + self.random
    }

    /// Scale all classes by an integer factor (used when expanding a
    /// per-block trace to a block group).
    pub const fn scaled(self, k: u64) -> Self {
        Self {
            coalesced: self.coalesced * k,
            strided: self.strided * k,
            random: self.random * k,
        }
    }
}

impl Add for MemTraffic {
    type Output = MemTraffic;
    fn add(self, rhs: Self) -> Self {
        Self {
            coalesced: self.coalesced + rhs.coalesced,
            strided: self.strided + rhs.strided,
            random: self.random + rhs.random,
        }
    }
}

impl AddAssign for MemTraffic {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

/// FLOPs performed by one FP64 `m8n8k4` MMA instruction
/// (8 × 8 × 4 fused multiply-adds, two FLOPs each).
pub const MMA_F64_FLOPS: u64 = 8 * 8 * 4 * 2;

/// Fused multiply-adds performed by one FP64 `m8n8k4` MMA instruction.
pub const MMA_F64_FMAS: u64 = 8 * 8 * 4;

/// Bit operations (AND + popcount-accumulate) represented by one single-bit
/// `m8n8k128` MMA instruction: 8 × 8 × 128 single-bit multiply-accumulates.
pub const MMA_B1_BITOPS: u64 = 8 * 8 * 128;

/// FLOPs performed by one FP16/BF16 `m16n8k16` MMA instruction
/// (16 × 8 × 16 fused multiply-adds, two FLOPs each).
pub const MMA_F16_FLOPS: u64 = 16 * 8 * 16 * 2;

/// Fused multiply-adds performed by one FP16/BF16 `m16n8k16` MMA.
pub const MMA_F16_FMAS: u64 = 16 * 8 * 16;

/// FLOPs performed by one TF32 `m16n8k8` MMA instruction
/// (16 × 8 × 8 fused multiply-adds, two FLOPs each).
pub const MMA_TF32_FLOPS: u64 = 16 * 8 * 8 * 2;

/// Fused multiply-adds performed by one TF32 `m16n8k8` MMA.
pub const MMA_TF32_FMAS: u64 = 16 * 8 * 8;

/// Counters for the operations a kernel issues.
///
/// All floating-point counts are in *operations* (an FMA counts as one
/// `fma_f64`, contributing two FLOPs); memory counts are in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// FP64 `m8n8k4` tensor-core MMA instructions issued (warp-wide).
    pub mma_f64: u64,
    /// Single-bit `m8n8k128` tensor-core MMA instructions issued.
    pub mma_b1: u64,
    /// FP16 `m16n8k16` tensor-core MMA instructions issued (f32
    /// accumulate).
    pub mma_f16: u64,
    /// BF16 `m16n8k16` tensor-core MMA instructions issued (f32
    /// accumulate).
    pub mma_bf16: u64,
    /// TF32 `m16n8k8` tensor-core MMA instructions issued (f32
    /// accumulate).
    pub mma_tf32: u64,
    /// CUDA-core FP64 fused multiply-adds.
    pub fma_f64: u64,
    /// CUDA-core FP32 fused multiply-adds (the CC replacements of the
    /// mixed-precision MMAs).
    pub fma_f32: u64,
    /// CUDA-core FP64 additions/subtractions.
    pub add_f64: u64,
    /// CUDA-core FP64 multiplications.
    pub mul_f64: u64,
    /// CUDA-core FP64 special-function operations (divide, sqrt, trig);
    /// modeled at reduced throughput.
    pub special_f64: u64,
    /// Integer / logic / predicate operations (BFS bitmap manipulation,
    /// index arithmetic that dominates a kernel, …).
    pub int_ops: u64,
    /// Global-memory load traffic by coalescing class.
    pub gmem_load: MemTraffic,
    /// Global-memory store traffic by coalescing class.
    pub gmem_store: MemTraffic,
    /// L2-serviced traffic in bytes: operand re-streaming with working
    /// sets that fit the last-level cache (blocked GEMM slab reloads,
    /// gathered vectors, reused sparse blocks).
    pub l2_bytes: u64,
    /// Shared-memory traffic in bytes (both directions).
    pub smem_bytes: u64,
    /// Constant-memory traffic in bytes (broadcast-cached; effectively
    /// free after first use — recorded for the utilization analysis).
    pub cmem_bytes: u64,
    /// Block-level barrier synchronizations.
    pub syncs: u64,
}

impl OpCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// FP64 FLOPs executed on tensor cores.
    pub const fn tc_flops(&self) -> u64 {
        self.mma_f64 * MMA_F64_FLOPS
    }

    /// FP64 FLOPs executed on CUDA cores (FMA = 2 FLOPs).
    pub const fn cc_flops(&self) -> u64 {
        self.fma_f64 * 2 + self.add_f64 + self.mul_f64 + self.special_f64
    }

    /// FP16 (f32-accumulate) FLOPs executed on tensor cores.
    pub const fn tc_f16_flops(&self) -> u64 {
        self.mma_f16 * MMA_F16_FLOPS
    }

    /// BF16 (f32-accumulate) FLOPs executed on tensor cores.
    pub const fn tc_bf16_flops(&self) -> u64 {
        self.mma_bf16 * MMA_F16_FLOPS
    }

    /// TF32 (f32-accumulate) FLOPs executed on tensor cores.
    pub const fn tc_tf32_flops(&self) -> u64 {
        self.mma_tf32 * MMA_TF32_FLOPS
    }

    /// All mixed-precision tensor-core FLOPs (FP16 + BF16 + TF32).
    pub const fn tc_mixed_flops(&self) -> u64 {
        self.tc_f16_flops() + self.tc_bf16_flops() + self.tc_tf32_flops()
    }

    /// FP32 FLOPs executed on CUDA cores (FMA = 2 FLOPs) — the CC
    /// replacements of the mixed-precision MMAs.
    pub const fn cc_f32_flops(&self) -> u64 {
        self.fma_f32 * 2
    }

    /// Total FP64 FLOPs on either unit.
    pub const fn flops_f64(&self) -> u64 {
        self.tc_flops() + self.cc_flops()
    }

    /// Total global-memory bytes (loads + stores, all classes).
    pub const fn gmem_bytes(&self) -> u64 {
        self.gmem_load.total() + self.gmem_store.total()
    }

    /// Arithmetic intensity in FLOPs per global-memory byte. Returns
    /// `None` when no global traffic was recorded.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        let b = self.gmem_bytes();
        if b == 0 {
            None
        } else {
            Some(self.flops_f64() as f64 / b as f64)
        }
    }

    /// Cache-aware arithmetic intensity: FLOPs over the DRAM + L2 traffic
    /// (the memory-side levels of the paper's cache-aware roofline,
    /// Figure 9). Blocked kernels whose operand re-streaming is served by
    /// L2 land at their effective, not compulsory, intensity.
    pub fn cache_aware_intensity(&self) -> Option<f64> {
        let b = self.gmem_bytes() + self.l2_bytes;
        if b == 0 {
            None
        } else {
            Some(self.flops_f64() as f64 / b as f64)
        }
    }

    /// The FP64-era counters as an ordered `(name, value)` list, memory
    /// traffic flattened by coalescing class. This is the canonical
    /// export the golden-artifact layer serializes: **the 17-entry list
    /// and its order are frozen into the `cubie-golden/v1` schema** (the
    /// `trace_counters` snapshot's column set), so it must not change.
    /// Counters added later (the mixed-precision MMA axis) are exported
    /// separately via [`Self::mixed_named_counts`] and their own golden
    /// artifact.
    pub fn named_counts(&self) -> [(&'static str, u64); 17] {
        [
            ("mma_f64", self.mma_f64),
            ("mma_b1", self.mma_b1),
            ("fma_f64", self.fma_f64),
            ("add_f64", self.add_f64),
            ("mul_f64", self.mul_f64),
            ("special_f64", self.special_f64),
            ("int_ops", self.int_ops),
            ("gmem_load_coalesced", self.gmem_load.coalesced),
            ("gmem_load_strided", self.gmem_load.strided),
            ("gmem_load_random", self.gmem_load.random),
            ("gmem_store_coalesced", self.gmem_store.coalesced),
            ("gmem_store_strided", self.gmem_store.strided),
            ("gmem_store_random", self.gmem_store.random),
            ("l2_bytes", self.l2_bytes),
            ("smem_bytes", self.smem_bytes),
            ("cmem_bytes", self.cmem_bytes),
            ("syncs", self.syncs),
        ]
    }

    /// The mixed-precision counters as an ordered `(name, value)` list —
    /// the post-FP64 extension of [`Self::named_counts`], serialized by
    /// the `ext_precision_*` golden artifacts.
    pub fn mixed_named_counts(&self) -> [(&'static str, u64); 4] {
        [
            ("mma_f16", self.mma_f16),
            ("mma_bf16", self.mma_bf16),
            ("mma_tf32", self.mma_tf32),
            ("fma_f32", self.fma_f32),
        ]
    }

    /// Scale every counter by an integer factor.
    pub const fn scaled(self, k: u64) -> Self {
        Self {
            mma_f64: self.mma_f64 * k,
            mma_b1: self.mma_b1 * k,
            mma_f16: self.mma_f16 * k,
            mma_bf16: self.mma_bf16 * k,
            mma_tf32: self.mma_tf32 * k,
            fma_f64: self.fma_f64 * k,
            fma_f32: self.fma_f32 * k,
            add_f64: self.add_f64 * k,
            mul_f64: self.mul_f64 * k,
            special_f64: self.special_f64 * k,
            int_ops: self.int_ops * k,
            gmem_load: self.gmem_load.scaled(k),
            gmem_store: self.gmem_store.scaled(k),
            l2_bytes: self.l2_bytes * k,
            smem_bytes: self.smem_bytes * k,
            cmem_bytes: self.cmem_bytes * k,
            syncs: self.syncs * k,
        }
    }

    /// True when no operations were recorded.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl Add for OpCounters {
    type Output = OpCounters;
    fn add(self, rhs: Self) -> Self {
        Self {
            mma_f64: self.mma_f64 + rhs.mma_f64,
            mma_b1: self.mma_b1 + rhs.mma_b1,
            mma_f16: self.mma_f16 + rhs.mma_f16,
            mma_bf16: self.mma_bf16 + rhs.mma_bf16,
            mma_tf32: self.mma_tf32 + rhs.mma_tf32,
            fma_f64: self.fma_f64 + rhs.fma_f64,
            fma_f32: self.fma_f32 + rhs.fma_f32,
            add_f64: self.add_f64 + rhs.add_f64,
            mul_f64: self.mul_f64 + rhs.mul_f64,
            special_f64: self.special_f64 + rhs.special_f64,
            int_ops: self.int_ops + rhs.int_ops,
            gmem_load: self.gmem_load + rhs.gmem_load,
            gmem_store: self.gmem_store + rhs.gmem_store,
            l2_bytes: self.l2_bytes + rhs.l2_bytes,
            smem_bytes: self.smem_bytes + rhs.smem_bytes,
            cmem_bytes: self.cmem_bytes + rhs.cmem_bytes,
            syncs: self.syncs + rhs.syncs,
        }
    }
}

impl AddAssign for OpCounters {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpCounters {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mma_flop_constants() {
        assert_eq!(MMA_F64_FLOPS, 512);
        assert_eq!(MMA_F64_FMAS, 256);
        assert_eq!(MMA_B1_BITOPS, 8192);
        assert_eq!(MMA_F16_FLOPS, 4096);
        assert_eq!(MMA_F16_FMAS, 2048);
        assert_eq!(MMA_TF32_FLOPS, 2048);
        assert_eq!(MMA_TF32_FMAS, 1024);
    }

    #[test]
    fn mixed_flops_are_disjoint_from_fp64() {
        let c = OpCounters {
            mma_f64: 1,
            mma_f16: 2,
            mma_bf16: 3,
            mma_tf32: 4,
            fma_f32: 10,
            ..Default::default()
        };
        assert_eq!(c.tc_flops(), 512);
        assert_eq!(c.tc_f16_flops(), 8192);
        assert_eq!(c.tc_bf16_flops(), 12288);
        assert_eq!(c.tc_tf32_flops(), 8192);
        assert_eq!(c.tc_mixed_flops(), 28672);
        assert_eq!(c.cc_f32_flops(), 20);
        // FP64 totals are untouched by the mixed axis.
        assert_eq!(c.flops_f64(), 512);
    }

    #[test]
    fn named_counts_schema_is_frozen_and_mixed_extends_it() {
        // The 17-name list (and order) is part of cubie-golden/v1.
        let names: Vec<&str> = OpCounters::default()
            .named_counts()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names.len(), 17);
        assert_eq!(names[0], "mma_f64");
        assert_eq!(names[16], "syncs");
        assert!(!names.contains(&"mma_f16"), "mixed counters must stay out");
        let mixed: Vec<&str> = OpCounters::default()
            .mixed_named_counts()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(mixed, ["mma_f16", "mma_bf16", "mma_tf32", "fma_f32"]);
    }

    #[test]
    fn tc_and_cc_flops_are_disjoint() {
        let c = OpCounters {
            mma_f64: 2,
            fma_f64: 10,
            add_f64: 3,
            ..Default::default()
        };
        assert_eq!(c.tc_flops(), 1024);
        assert_eq!(c.cc_flops(), 23);
        assert_eq!(c.flops_f64(), 1047);
    }

    #[test]
    fn traffic_total_and_scale() {
        let t = MemTraffic {
            coalesced: 100,
            strided: 10,
            random: 1,
        };
        assert_eq!(t.total(), 111);
        assert_eq!(t.scaled(3).total(), 333);
    }

    #[test]
    fn counters_add_componentwise() {
        let a = OpCounters {
            mma_f64: 1,
            gmem_load: MemTraffic::coalesced(8),
            ..Default::default()
        };
        let b = OpCounters {
            mma_f64: 2,
            gmem_load: MemTraffic::random(4),
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.mma_f64, 3);
        assert_eq!(c.gmem_load.coalesced, 8);
        assert_eq!(c.gmem_load.random, 4);
        assert_eq!(c.gmem_bytes(), 12);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let a = OpCounters {
            mma_f64: 2,
            fma_f64: 5,
            smem_bytes: 7,
            syncs: 1,
            ..Default::default()
        };
        let s = a.scaled(4);
        assert_eq!(s.mma_f64, 8);
        assert_eq!(s.fma_f64, 20);
        assert_eq!(s.smem_bytes, 28);
        assert_eq!(s.syncs, 4);
    }

    #[test]
    fn arithmetic_intensity() {
        let c = OpCounters {
            fma_f64: 8, // 16 flops
            gmem_load: MemTraffic::coalesced(32),
            ..Default::default()
        };
        assert_eq!(c.arithmetic_intensity(), Some(0.5));
        assert_eq!(OpCounters::default().arithmetic_intensity(), None);
    }

    #[test]
    fn sum_folds() {
        let total: OpCounters = (0..4)
            .map(|_| OpCounters {
                mma_b1: 1,
                ..Default::default()
            })
            .sum();
        assert_eq!(total.mma_b1, 4);
    }
}
