//! Read-only file mappings for the prepared-input snapshot store.
//!
//! [`Mapping`] wraps a whole-file `mmap(2)` (via the C library every
//! Rust binary on unix already links — no new dependency) so multi-
//! hundred-MB prepared cases can be served as borrowed slices without
//! copying them onto the heap: pages fault in lazily from the kernel
//! page cache, and a warm restart touches no bytes it does not read.
//!
//! Portability: the mapped fast path is compiled on 64-bit unix targets;
//! everywhere else (and whenever the `mmap` call itself fails — some
//! filesystems refuse it) [`Mapping::of_file`] degrades to reading the
//! file into an owned buffer. Consumers only ever see `&[u8]`, so the
//! two representations are interchangeable — which is exactly the
//! contract the zero-copy [`crate::slab::Slab`] layer builds on.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};

/// A read-only view of one file's bytes: either a live `mmap` or an
/// owned in-memory copy (the portability/error fallback).
#[derive(Debug)]
pub struct Mapping {
    repr: Repr,
}

#[derive(Debug)]
enum Repr {
    /// A live `PROT_READ` mapping, unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped { ptr: *mut u8, len: usize },
    /// Owned fallback: the file was read into memory.
    Owned(Vec<u8>),
}

// SAFETY: the mapped variant is a read-only, private mapping whose
// lifetime is owned by this struct; shared references to immutable bytes
// are safe to send and share across threads (the owned variant trivially
// so).
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mapping {
    /// Map `file` read-only in its entirety. Falls back to an owned
    /// read when mapping is unavailable (non-unix target, zero-length
    /// file, or an `mmap` refusal from the filesystem).
    pub fn of_file(file: &mut File) -> io::Result<Mapping> {
        let len = file.metadata()?.len();
        if usize::try_from(len).is_err() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this target",
            ));
        }
        let len = len as usize;
        #[cfg(all(unix, target_pointer_width = "64"))]
        if len > 0 {
            use std::os::fd::AsRawFd;
            // SAFETY: a whole-file PROT_READ/MAP_PRIVATE mapping of a
            // file descriptor we own; failure is reported as MAP_FAILED
            // (-1), checked below.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Mapping {
                    repr: Repr::Mapped {
                        ptr: ptr.cast(),
                        len,
                    },
                });
            }
            // fall through to the owned read
        }
        let mut buf = Vec::with_capacity(len);
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        Ok(Mapping {
            repr: Repr::Owned(buf),
        })
    }

    /// Wrap already-materialized bytes as an owned (non-mmap) view —
    /// lets decoders that normally read from a file mapping run over
    /// in-memory buffers (tests, in-process snapshots).
    pub fn from_bytes(bytes: Vec<u8>) -> Mapping {
        Mapping {
            repr: Repr::Owned(bytes),
        }
    }

    /// Read `file` into an owned buffer, never mapping — for callers
    /// that explicitly want copied (mutation-safe) storage.
    pub fn owned_copy(file: &mut File) -> io::Result<Mapping> {
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        Ok(Mapping {
            repr: Repr::Owned(buf),
        })
    }

    /// The mapped (or copied) bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.repr {
            #[cfg(all(unix, target_pointer_width = "64"))]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, valid until `munmap` in `Drop`.
            Repr::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Repr::Owned(v) => v,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.repr {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Repr::Mapped { len, .. } => *len,
            Repr::Owned(v) => v.len(),
        }
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are served by a live `mmap` (false: owned copy).
    pub fn is_mmap(&self) -> bool {
        match &self.repr {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Repr::Mapped { .. } => true,
            Repr::Owned(_) => false,
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        match &self.repr {
            #[cfg(all(unix, target_pointer_width = "64"))]
            Repr::Mapped { ptr, len } => {
                // SAFETY: exactly the pointer/length pair returned by
                // `mmap`, unmapped exactly once.
                unsafe {
                    sys::munmap(ptr.cast::<std::ffi::c_void>(), *len);
                }
            }
            Repr::Owned(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(tag: &str, contents: &[u8]) -> (std::path::PathBuf, File) {
        let path =
            std::env::temp_dir().join(format!("cubie_mmap_test_{}_{tag}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        let f = File::open(&path).unwrap();
        (path, f)
    }

    #[test]
    fn maps_file_bytes() {
        let (path, mut f) = tmp_file("basic", b"hello mapping");
        let m = Mapping::of_file(&mut f).unwrap();
        assert_eq!(m.bytes(), b"hello mapping");
        assert_eq!(m.len(), 13);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(m.is_mmap(), "unix should serve a real mapping");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_degrades_to_owned() {
        let (path, mut f) = tmp_file("empty", b"");
        let m = Mapping::of_file(&mut f).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mmap());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn owned_copy_matches_mapping() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let (path, mut f) = tmp_file("copy", &data);
        let mapped = Mapping::of_file(&mut f).unwrap();
        let mut f2 = File::open(&path).unwrap();
        let copied = Mapping::owned_copy(&mut f2).unwrap();
        assert!(!copied.is_mmap());
        assert_eq!(mapped.bytes(), copied.bytes());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn mapping_is_send_and_shared_across_threads() {
        let (path, mut f) = tmp_file("threads", &vec![7u8; 4096]);
        let m = std::sync::Arc::new(Mapping::of_file(&mut f).unwrap());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || m.bytes().iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 7 * 4096);
        }
        let _ = std::fs::remove_file(path);
    }
}
