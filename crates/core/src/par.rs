//! Data-parallel helpers for the functional kernel executions, running
//! on the persistent worker pool in [`crate::pool`].
//!
//! The workloads model GPU thread *blocks*; functionally we execute
//! block ranges across CPU threads. Work is distributed dynamically
//! (atomic cursor), but every index is claimed exactly once and written
//! to its own output slot, so results are index-ordered and
//! bit-identical for any worker cap — `--jobs 1` and `--jobs 8` produce
//! the same bytes.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker cap: 0 means "use all available cores". Set via
/// [`set_max_workers`] (the `--jobs N` flag of the sweep engine).
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Largest number of partial blocks [`par_reduce`] splits its domain
/// into. The partition is a function of `n` alone — never of the worker
/// count — so the merge tree (and any float result) is identical under
/// every cap.
const MAX_REDUCE_BLOCKS: usize = 256;

/// Cap the number of worker threads every subsequent `par_*` call may
/// use (0 restores "all available cores"). Returns the previous cap.
///
/// Results of `par_map`/`par_reduce` are collected in index order, so
/// changing the cap never changes any result — only the wall-clock time.
/// The persistent pool resizes to the new cap: shrinking retires parked
/// workers, growing spawns lazily on the next parallel call.
pub fn set_max_workers(n: usize) -> usize {
    let prev = MAX_WORKERS.swap(n, Ordering::Relaxed);
    crate::pool::resize_to_cap();
    prev
}

/// The current worker cap (0 = uncapped).
pub fn max_workers() -> usize {
    MAX_WORKERS.load(Ordering::Relaxed)
}

/// The job count the pool actually runs with: the explicit cap when one
/// is set, otherwise one worker per available core. This is the single
/// source of truth for every "effective jobs" startup log line — the
/// sweep CLI reports this value, so what is printed is what
/// [`workers_for`] hands the pool.
pub fn effective_workers() -> usize {
    let cap = MAX_WORKERS.load(Ordering::Relaxed);
    if cap == 0 {
        // Uncapped: one worker per available core (resolved once per
        // process — see `pool::host_parallelism`).
        crate::pool::host_parallelism()
    } else {
        // An explicit cap is honoured verbatim — deliberately allowed to
        // exceed the core count so `--jobs N` exercises real multi-thread
        // schedules (and their equivalence tests) on small machines.
        cap
    }
}

/// Number of worker threads to use for `n` independent work items.
pub fn workers_for(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    effective_workers().min(n)
}

/// Map `f` over `0..n` in parallel, collecting results in index order.
///
/// `f` is called exactly once per index. Work is distributed dynamically
/// (atomic counter) so irregular workloads — sparse rows, BFS frontiers —
/// balance across threads.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers_for(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    let next = AtomicUsize::new(0);
    let chunk = (n / (workers * 8)).max(1);
    let slots = SendSlots(out.as_mut_ptr());
    crate::pool::run_batch(workers - 1, &|| {
        let mut span = cubie_obs::span("par", "map");
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            span.add_items((end - start) as u64);
            for i in start..end {
                // SAFETY: each index is claimed exactly once by the
                // atomic counter, so no two threads touch the same slot.
                unsafe {
                    slots.set(i, f(i));
                }
            }
        }
    });
    // SAFETY: the cursor handed out every index in 0..n and `run_batch`
    // returned normally, so all n slots are initialized. (If a worker
    // panicked, `run_batch` re-raised above and the still-empty Vec
    // leaks the written elements — safe, if wasteful.)
    unsafe { out.set_len(n) };
    out
}

/// Longest-processing-time-first dispatch order for `n` items with
/// per-item cost estimates: indices sorted by `cost` descending, ties
/// broken by index ascending (so the order is total and deterministic).
///
/// Dispatching the heaviest items first shrinks the makespan of a
/// bounded worker pool: a multi-second item started last would leave
/// every other worker idle behind it, while started first it overlaps
/// the long tail of cheap items. The permutation affects *schedule
/// only* — callers scatter results back to canonical positions, so
/// output stays bit-identical for any job count.
pub fn makespan_order(n: usize, cost: impl Fn(usize) -> f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        cost(b)
            .partial_cmp(&cost(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// [`par_map`] with LPT scheduling: items are *dispatched* in
/// [`makespan_order`] but *collected* at their original indices, so the
/// result is element-for-element identical to `par_map(n, f)` — only the
/// wall-clock schedule differs (sort the keys, never the results).
pub fn par_map_lpt<T: Send>(
    n: usize,
    cost: impl Fn(usize) -> f64,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let order = makespan_order(n, cost);
    let permuted = par_map(n, |slot| f(order[slot]));
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (slot, item) in permuted.into_iter().enumerate() {
        out[order[slot]] = Some(item);
    }
    out.into_iter().map(|o| o.unwrap()).collect()
}

/// Apply `f` to equally sized chunks of `data` in parallel;
/// `f(chunk_index, chunk)` sees disjoint mutable sub-slices.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = data.len().div_ceil(chunk_size);
    let workers = workers_for(n_chunks);
    if workers == 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let base = data.as_mut_ptr() as usize;
    let len = data.len();
    crate::pool::run_batch(workers - 1, &|| {
        let mut span = cubie_obs::span("par", "chunks");
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_chunks {
                break;
            }
            let start = i * chunk_size;
            let end = (start + chunk_size).min(len);
            // Items are *elements* processed (matching `par_map`), not
            // chunk count, so profile attribution is comparable.
            span.add_items((end - start) as u64);
            // SAFETY: chunk index `i` is claimed exactly once, and the
            // [start, end) ranges of distinct chunks are disjoint
            // within the original slice.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start) };
            f(i, chunk);
        }
    });
}

/// Parallel fold-and-reduce over `0..n`: each index produces a value with
/// `f`, merged associatively with `merge` starting from `identity`.
///
/// The domain is split into fixed blocks (a function of `n` only); each
/// block folds linearly in index order into one partial, and the
/// partials merge in block order seeded with `identity`. Both the block
/// partition and the merge tree are independent of the worker cap, so
/// results — float results included — are bit-identical for every
/// `--jobs` value and reproducible run-to-run.
pub fn par_reduce<T, F, M>(n: usize, identity: T, f: F, merge: M) -> T
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    if n == 0 {
        return identity;
    }
    let block = n.div_ceil(MAX_REDUCE_BLOCKS).max(1);
    let n_blocks = n.div_ceil(block);
    let partials = par_map(n_blocks, |b| {
        let start = b * block;
        let end = (start + block).min(n);
        let mut acc = f(start);
        for i in start + 1..end {
            acc = merge(acc, f(i));
        }
        acc
    });
    partials.into_iter().fold(identity, merge)
}

/// Raw-pointer view of `par_map`'s uninitialized output buffer,
/// shareable across the pool workers.
struct SendSlots<T>(*mut T);
unsafe impl<T: Send> Sync for SendSlots<T> {}
impl<T> SendSlots<T> {
    /// # Safety
    /// Caller must guarantee exclusive access to index `i`, which must be
    /// in bounds of the buffer the slots were created from; the slot must
    /// be uninitialized (the write does not drop a previous value).
    unsafe fn set(&self, i: usize, value: T) {
        unsafe { self.0.add(i).write(value) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(1000, |i| i * 2);
        assert_eq!(v.len(), 1000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn par_map_empty() {
        let v: Vec<usize> = par_map(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn par_map_single() {
        let v = par_map(1, |i| i + 41);
        assert_eq!(v, vec![41]);
    }

    #[test]
    fn par_map_nontrivial_drop_types() {
        let v = par_map(500, |i| vec![i; i % 7]);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(x.len(), i % 7);
        }
        drop(v); // every element must drop cleanly exactly once
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 17, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 17) as u64 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_exact_division() {
        let mut data = vec![0u32; 64];
        par_chunks_mut(&mut data, 8, |ci, chunk| {
            assert_eq!(chunk.len(), 8);
            chunk[0] = ci as u32;
        });
        assert_eq!(data[56], 7);
    }

    #[test]
    fn par_reduce_sums() {
        let s = par_reduce(10_000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_reduce_is_deterministic_with_float_merge() {
        let a = par_reduce(5000, 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        let b = par_reduce(5000, 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        assert_eq!(a, b);
    }

    #[test]
    fn par_reduce_float_merge_is_cap_independent() {
        // The blocked merge tree is a function of n alone, so a float
        // reduction gives the same bits under any worker cap.
        let _guard = crate::pool::cap_lock();
        let run = || par_reduce(5000, 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        let prev = set_max_workers(1);
        let serial = run();
        set_max_workers(3);
        let three = run();
        set_max_workers(8);
        let eight = run();
        set_max_workers(prev);
        assert_eq!(serial.to_bits(), three.to_bits());
        assert_eq!(serial.to_bits(), eight.to_bits());
    }

    #[test]
    fn workers_for_bounds() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(100) >= 1);
    }

    #[test]
    fn effective_workers_tracks_the_cap() {
        let _guard = crate::pool::cap_lock();
        let prev = set_max_workers(3);
        assert_eq!(effective_workers(), 3);
        assert_eq!(workers_for(100), 3);
        set_max_workers(0);
        // Uncapped: the pool's host-parallelism resolution, and
        // workers_for hands out exactly that (modulo the item count).
        assert_eq!(effective_workers(), crate::pool::host_parallelism());
        assert_eq!(workers_for(usize::MAX), effective_workers());
        set_max_workers(prev);
    }
}
