//! Scoped-thread data-parallel helpers for the functional kernel
//! executions.
//!
//! The workloads model GPU thread *blocks*; functionally we execute block
//! ranges across CPU threads with `std::thread::scope`, which guarantees
//! data-race freedom through borrow checking (outputs are split into
//! disjoint chunks, per-block results are collected and merged).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker cap: 0 means "use all available cores". Set via
/// [`set_max_workers`] (the `--jobs N` flag of the sweep engine).
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads every subsequent `par_*` call may
/// use (0 restores "all available cores"). Returns the previous cap.
///
/// Results of `par_map`/`par_reduce` are collected in index order, so
/// changing the cap never changes any result — only the wall-clock time.
pub fn set_max_workers(n: usize) -> usize {
    MAX_WORKERS.swap(n, Ordering::Relaxed)
}

/// The current worker cap (0 = uncapped).
pub fn max_workers() -> usize {
    MAX_WORKERS.load(Ordering::Relaxed)
}

/// Number of worker threads to use for `n` independent work items.
pub fn workers_for(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    let cap = MAX_WORKERS.load(Ordering::Relaxed);
    let limit = if cap == 0 {
        // Uncapped: one worker per available core.
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        // An explicit cap is honoured verbatim — deliberately allowed to
        // exceed the core count so `--jobs N` exercises real multi-thread
        // schedules (and their equivalence tests) on small machines.
        cap
    };
    limit.min(n)
}

/// Map `f` over `0..n` in parallel, collecting results in index order.
///
/// `f` is called exactly once per index. Work is distributed dynamically
/// (atomic counter) so irregular workloads — sparse rows, BFS frontiers —
/// balance across threads.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers_for(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let chunk = (n / (workers * 8)).max(1);
    let slots = as_send_slots(&mut out);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            let slots = &slots;
            s.spawn(move || {
                let mut span = cubie_obs::span("par", "map");
                loop {
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    span.add_items((end - start) as u64);
                    for i in start..end {
                        // SAFETY: each index is claimed exactly once by the
                        // atomic counter, so no two threads touch the same slot.
                        unsafe {
                            slots.set(i, f(i));
                        }
                    }
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("slot filled")).collect()
}

/// Apply `f` to equally sized chunks of `data` in parallel;
/// `f(chunk_index, chunk)` sees disjoint mutable sub-slices.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = data.len().div_ceil(chunk_size);
    let workers = workers_for(n_chunks);
    if workers == 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let base = data.as_mut_ptr() as usize;
    let len = data.len();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            s.spawn(move || {
                let mut span = cubie_obs::span("par", "chunks");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_chunks {
                        break;
                    }
                    let start = i * chunk_size;
                    let end = (start + chunk_size).min(len);
                    span.add_items(1);
                    // SAFETY: chunk index `i` is claimed exactly once, and the
                    // [start, end) ranges of distinct chunks are disjoint
                    // within the original slice.
                    let chunk = unsafe {
                        std::slice::from_raw_parts_mut((base as *mut T).add(start), end - start)
                    };
                    f(i, chunk);
                }
            });
        }
    });
}

/// Parallel fold-and-reduce over `0..n`: each index produces a value with
/// `f`, merged associatively with `merge` starting from `identity`.
/// The merge order is deterministic (index-ascending) so results are
/// reproducible run-to-run.
pub fn par_reduce<T, F, M>(n: usize, identity: T, f: F, merge: M) -> T
where
    T: Send + Clone,
    F: Fn(usize) -> T + Sync,
    M: Fn(T, T) -> T,
{
    par_map(n, f).into_iter().fold(identity, merge)
}

struct SendSlots<T>(*mut Option<T>);
unsafe impl<T: Send> Sync for SendSlots<T> {}
impl<T> SendSlots<T> {
    /// # Safety
    /// Caller must guarantee exclusive access to index `i`, which must be
    /// in bounds of the slice the slots were created from.
    unsafe fn set(&self, i: usize, value: T) {
        unsafe { *self.0.add(i) = Some(value) }
    }
}

fn as_send_slots<T>(v: &mut [Option<T>]) -> SendSlots<T> {
    SendSlots(v.as_mut_ptr())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(1000, |i| i * 2);
        assert_eq!(v.len(), 1000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn par_map_empty() {
        let v: Vec<usize> = par_map(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn par_map_single() {
        let v = par_map(1, |i| i + 41);
        assert_eq!(v, vec![41]);
    }

    #[test]
    fn par_chunks_mut_writes_disjointly() {
        let mut data = vec![0u64; 1003];
        par_chunks_mut(&mut data, 17, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci as u64 + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 17) as u64 + 1);
        }
    }

    #[test]
    fn par_chunks_mut_exact_division() {
        let mut data = vec![0u32; 64];
        par_chunks_mut(&mut data, 8, |ci, chunk| {
            assert_eq!(chunk.len(), 8);
            chunk[0] = ci as u32;
        });
        assert_eq!(data[56], 7);
    }

    #[test]
    fn par_reduce_sums() {
        let s = par_reduce(10_000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_reduce_is_deterministic_with_float_merge() {
        let a = par_reduce(5000, 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        let b = par_reduce(5000, 0.0f64, |i| (i as f64).sin(), |x, y| x + y);
        assert_eq!(a, b);
    }

    #[test]
    fn workers_for_bounds() {
        assert_eq!(workers_for(0), 1);
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(100) >= 1);
    }
}
