//! # cubie-core
//!
//! Core substrate for the Cubie-rs characterization suite: the matrix
//! multiplication unit (MMU) abstraction itself.
//!
//! The paper evaluates NVIDIA tensor cores as a representative MMU through
//! the warp-level `mma` PTX interface. Since no tensor-core hardware is
//! assumed here, this crate provides a *functional emulation* of that
//! interface with bit-exact FP64 arithmetic semantics:
//!
//! * [`frag`] — warp-level fragment layouts for the FP64 `m8n8k4` MMA and
//!   the single-bit `m8n8k128` MMA (which lane of the 32-thread warp owns
//!   which matrix element).
//! * [`mma`] — the MMA instructions themselves, with the accumulation
//!   order real FP64 tensor cores use (a chain of fused multiply-adds per
//!   output element), plus naive reference implementations used by tests.
//! * [`counters`] — operation counters recorded during functional kernel
//!   execution and produced by analytic kernel traces; these drive the
//!   timing, power, and roofline models in `cubie-sim`.
//! * [`scalar`] — mixed-precision scalar formats (FP16 / BF16 / TF32),
//!   bit-accurate RN/RZ rounding helpers, and the per-generation
//!   accumulation semantics ([`scalar::MmaGen`]) the reduced-precision
//!   MMA models reproduce.
//! * [`rng`] — the Lehmer linear congruential generator the paper borrows
//!   from LINPACK for pseudo-random input initialization in `(-2, 2)`.
//! * [`complex`] — minimal complex arithmetic for the FFT workload.
//! * [`error`] — average / maximum numerical error metrics (Table 6).
//! * [`matrix`] — small row-major dense matrix container shared by the
//!   workloads.
//! * [`par`] — data-parallel helpers used by the functional executions
//!   of the workloads, running on the persistent worker pool in
//!   [`pool`]; includes LPT (longest-first) scheduling that reorders
//!   dispatch without changing any result bit.
//! * [`mmap`] / [`slab`] — read-only file mappings and the
//!   owned-or-mapped [`slab::Slab`] buffers under prepared cases, so
//!   snapshot-store hits serve kernel inputs zero-copy from disk.
//! * [`simd`] — SIMD-width implementations of the dominant inner loops
//!   (strided MMA core, CSR SpMV row, stencil star row) with runtime
//!   dispatch across scalar/AVX2/AVX-512/NEON, every path bit-identical
//!   to scalar (`CUBIE_SIMD` forces a path).
//! * [`workspace`] — thread-local reusable buffer arenas the kernel hot
//!   loops check scratch out of; values are always fully re-initialized
//!   (bit-identical to fresh allocation), only capacity is recycled
//!   (`CUBIE_WS=off` restores fresh allocation).

#![warn(missing_docs)]

pub mod complex;
pub mod counters;
pub mod error;
pub mod frag;
pub mod matrix;
pub mod mma;
pub mod mmap;
pub mod par;
pub mod pool;
pub mod rng;
pub mod scalar;
pub mod simd;
pub mod slab;
pub mod workspace;

pub use complex::C64;
pub use counters::{MemTraffic, OpCounters};
pub use error::ErrorStats;
pub use matrix::DenseMatrix;
pub use rng::{LcgF64, SplitMix64};
pub use scalar::{Bf16, MmaGen, Precision, Tf32, F16};

/// Number of threads in a warp — the cooperative execution group that owns
/// MMA fragments.
pub const WARP_SIZE: usize = 32;
