//! Owned-or-mapped typed buffers: the zero-copy layer under prepared
//! cases.
//!
//! A [`Slab<T>`] is the storage behind CSR/graph index and value arrays.
//! Freshly generated cases own their data (`Vec<T>`); cases loaded from
//! the prepared-input snapshot store borrow it straight out of an
//! [`mmap`](crate::mmap::Mapping) of the snapshot file. Both deref to
//! `&[T]`, so kernels see the exact same slices either way and the
//! bit-identity gates can compare the two paths directly.
//!
//! Mapped slabs share the underlying [`Mapping`] through an `Arc`, so
//! cloning a case loaded from the store is O(1) and several cases can
//! borrow disjoint windows of one file. [`Slab::make_mut`] provides the
//! copy-on-write escape hatch for the rare paths that must mutate.

use std::ops::Deref;
use std::sync::Arc;

use crate::mmap::Mapping;

mod sealed {
    /// Sealed marker: types that may be reinterpreted from little-endian
    /// snapshot bytes. Only plain fixed-layout numeric types qualify.
    pub trait Pod: Copy + 'static {}
    impl Pod for u8 {}
    impl Pod for u32 {}
    impl Pod for u64 {}
    impl Pod for usize {}
    impl Pod for f64 {}
}

/// Plain-old-data element types a [`Slab`] can hold (sealed: `u8`,
/// `u32`, `u64`, `usize`, `f64`).
pub trait Pod: sealed::Pod {}
impl<T: sealed::Pod> Pod for T {}

/// A typed buffer that is either owned (`Vec<T>`) or a borrowed window
/// of a shared read-only file mapping.
pub enum Slab<T: Pod> {
    /// Heap-owned storage — the fresh-generation path.
    Owned(Vec<T>),
    /// A `len`-element window starting `off` bytes into `map` — the
    /// snapshot-store warm path.
    Mapped {
        /// The shared file mapping the elements live in.
        map: Arc<Mapping>,
        /// Byte offset of element 0 within the mapping (must be aligned
        /// to `align_of::<T>()`).
        off: usize,
        /// Number of `T` elements in the window.
        len: usize,
    },
}

impl<T: Pod> Slab<T> {
    /// An empty owned slab.
    pub fn new() -> Self {
        Slab::Owned(Vec::new())
    }

    /// Borrow a `len`-element window of `map` starting at byte offset
    /// `off`, without copying. Fails (with a description) if the window
    /// is misaligned for `T` or runs past the end of the mapping — the
    /// store treats that as a corrupt snapshot, never a panic.
    pub fn from_mapping(map: Arc<Mapping>, off: usize, len: usize) -> Result<Self, String> {
        let align = std::mem::align_of::<T>();
        let size = std::mem::size_of::<T>();
        let bytes = len
            .checked_mul(size)
            .ok_or_else(|| "slab window length overflows".to_string())?;
        let end = off
            .checked_add(bytes)
            .ok_or_else(|| "slab window offset overflows".to_string())?;
        if end > map.len() {
            return Err(format!(
                "slab window [{off}, {end}) exceeds mapping of {} bytes",
                map.len()
            ));
        }
        let base = map.bytes().as_ptr() as usize;
        if !(base + off).is_multiple_of(align) {
            return Err(format!(
                "slab window at byte {off} misaligned for align-{align} elements"
            ));
        }
        Ok(Slab::Mapped { map, off, len })
    }

    /// The elements as a slice (identical for owned and mapped slabs).
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Slab::Owned(v) => v,
            Slab::Mapped { map, off, len } => {
                // SAFETY: `from_mapping` validated alignment and bounds
                // against the immutable mapping, which `map` keeps alive;
                // `T` is sealed Pod so every bit pattern is a valid value.
                unsafe {
                    std::slice::from_raw_parts(map.bytes().as_ptr().add(*off).cast::<T>(), *len)
                }
            }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Slab::Owned(v) => v.len(),
            Slab::Mapped { len, .. } => *len,
        }
    }

    /// Whether the slab holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements borrow from a file mapping (false: owned).
    pub fn is_mapped(&self) -> bool {
        matches!(self, Slab::Mapped { .. })
    }

    /// Copy-on-write mutable access: a mapped slab is first copied into
    /// owned storage, then the owned `Vec` is returned for mutation.
    pub fn make_mut(&mut self) -> &mut Vec<T> {
        if let Slab::Mapped { .. } = self {
            *self = Slab::Owned(self.as_slice().to_vec());
        }
        match self {
            Slab::Owned(v) => v,
            Slab::Mapped { .. } => unreachable!("just converted to owned"),
        }
    }

    /// Convert into an owned `Vec`, copying if currently mapped.
    pub fn into_vec(self) -> Vec<T> {
        match self {
            Slab::Owned(v) => v,
            Slab::Mapped { .. } => self.as_slice().to_vec(),
        }
    }
}

impl<T: Pod> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T: Pod> From<Vec<T>> for Slab<T> {
    fn from(v: Vec<T>) -> Self {
        Slab::Owned(v)
    }
}

impl<T: Pod> Deref for Slab<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> Clone for Slab<T> {
    fn clone(&self) -> Self {
        match self {
            Slab::Owned(v) => Slab::Owned(v.clone()),
            Slab::Mapped { map, off, len } => Slab::Mapped {
                map: Arc::clone(map),
                off: *off,
                len: *len,
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_mapped() {
            f.write_str("mapped:")?;
        }
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: Pod + PartialEq> PartialEq for Slab<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Slab<T> {}

impl<T: Pod + PartialEq> PartialEq<Vec<T>> for Slab<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + PartialEq> PartialEq<Slab<T>> for Vec<T> {
    fn eq(&self, other: &Slab<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::File;
    use std::io::Write;

    fn mapping_of(bytes: &[u8], tag: &str) -> Arc<Mapping> {
        let path =
            std::env::temp_dir().join(format!("cubie_slab_test_{}_{tag}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        let mut f = File::open(&path).unwrap();
        let m = Mapping::of_file(&mut f).unwrap();
        let _ = std::fs::remove_file(path);
        Arc::new(m)
    }

    #[test]
    fn owned_slab_derefs_like_vec() {
        let s: Slab<u32> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_mapped());
        assert_eq!(s, vec![1, 2, 3]);
    }

    #[test]
    fn mapped_slab_reinterprets_le_bytes() {
        let vals = [1.5f64, -2.25, 1e300];
        let mut bytes = Vec::new();
        for v in vals {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let map = mapping_of(&bytes, "f64");
        let s: Slab<f64> = Slab::from_mapping(map, 0, 3).unwrap();
        assert!(s.is_mapped());
        if cfg!(target_endian = "little") {
            assert_eq!(&s[..], &vals);
        }
    }

    #[test]
    fn from_mapping_rejects_out_of_bounds_and_misaligned() {
        let map = mapping_of(&[0u8; 64], "bounds");
        assert!(Slab::<u64>::from_mapping(Arc::clone(&map), 0, 9).is_err());
        assert!(Slab::<u64>::from_mapping(Arc::clone(&map), 3, 1).is_err());
        assert!(Slab::<u64>::from_mapping(Arc::clone(&map), usize::MAX, 1).is_err());
        assert!(Slab::<u64>::from_mapping(map, 0, 8).is_ok());
    }

    #[test]
    fn make_mut_copies_on_write() {
        let bytes = 7u64.to_le_bytes();
        let map = mapping_of(&bytes, "cow");
        let mut s: Slab<u64> = Slab::from_mapping(map, 0, 1).unwrap();
        assert!(s.is_mapped());
        s.make_mut()[0] = 9;
        assert!(!s.is_mapped());
        assert_eq!(&s[..], &[9]);
    }

    #[test]
    fn clone_of_mapped_shares_the_mapping() {
        let bytes = [0u8; 32];
        let map = mapping_of(&bytes, "share");
        let s: Slab<u32> = Slab::from_mapping(Arc::clone(&map), 0, 4).unwrap();
        let c = s.clone();
        assert!(c.is_mapped());
        assert_eq!(s, c);
        // 1 local + 2 slabs hold the Arc
        assert_eq!(Arc::strong_count(&map), 3);
    }

    #[test]
    fn equality_across_representations() {
        let mut bytes = Vec::new();
        for v in [3u32, 1, 4, 1, 5] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let map = mapping_of(&bytes, "eq");
        let mapped: Slab<u32> = Slab::from_mapping(map, 0, 5).unwrap();
        let owned: Slab<u32> = vec![3, 1, 4, 1, 5].into();
        if cfg!(target_endian = "little") {
            assert_eq!(mapped, owned);
            assert_eq!(mapped, vec![3, 1, 4, 1, 5]);
        }
        let _ = owned;
    }
}
