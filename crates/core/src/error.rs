//! Numerical error metrics used by the paper's accuracy evaluation
//! (Table 6): element-wise average and maximum absolute error of a GPU
//! result against a serial CPU ground truth.

use serde::{Deserialize, Serialize};

/// Average and maximum absolute error between two result vectors, following
/// the paper's definitions:
///
/// * `Average_Error = (1/n) * sum_i |result_gpu_i - result_cpu_i|`
/// * `Max_Error     = max_i  |result_gpu_i - result_cpu_i|`
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Mean absolute element-wise error.
    pub avg: f64,
    /// Maximum absolute element-wise error.
    pub max: f64,
    /// Number of compared elements.
    pub n: usize,
}

impl ErrorStats {
    /// Compare `result` against `reference` element-wise.
    ///
    /// # Panics
    /// Panics if the slices have different lengths or are empty.
    pub fn compare(result: &[f64], reference: &[f64]) -> Self {
        assert_eq!(
            result.len(),
            reference.len(),
            "error comparison requires equal-length vectors"
        );
        assert!(!result.is_empty(), "cannot compare empty vectors");
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for (&a, &b) in result.iter().zip(reference) {
            let d = (a - b).abs();
            sum += d;
            if d > max {
                max = d;
            }
        }
        Self {
            avg: sum / result.len() as f64,
            max,
            n: result.len(),
        }
    }

    /// Compare complex results by interleaving real and imaginary parts,
    /// matching how the paper reports FFT errors on scalar samples.
    pub fn compare_c64(result: &[crate::C64], reference: &[crate::C64]) -> Self {
        assert_eq!(result.len(), reference.len());
        assert!(!result.is_empty());
        let mut sum = 0.0f64;
        let mut max = 0.0f64;
        for (&a, &b) in result.iter().zip(reference) {
            for d in [(a.re - b.re).abs(), (a.im - b.im).abs()] {
                sum += d;
                if d > max {
                    max = d;
                }
            }
        }
        Self {
            avg: sum / (2 * result.len()) as f64,
            max,
            n: 2 * result.len(),
        }
    }

    /// Merge two error statistics as if their element sets were
    /// concatenated (used to pool errors across test cases).
    pub fn merge(self, other: Self) -> Self {
        if self.n == 0 {
            return other;
        }
        if other.n == 0 {
            return self;
        }
        let n = self.n + other.n;
        Self {
            avg: (self.avg * self.n as f64 + other.avg * other.n as f64) / n as f64,
            max: self.max.max(other.max),
            n,
        }
    }

    /// True when the result is bit-identical to the reference.
    pub fn is_exact(&self) -> bool {
        self.max == 0.0
    }
}

/// A compensated (Kahan) accumulator, used by CPU ground-truth reductions
/// where the paper relies on a "naive CPU serial implementation"; we expose
/// both so tests can distinguish naive from compensated accumulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    c: f64,
}

impl KahanSum {
    /// Fresh accumulator at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one term with error compensation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let y = x - self.c;
        let t = self.sum + y;
        self.c = (t - self.sum) - y;
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_identical_is_exact() {
        let v = vec![1.0, -2.5, 3.25];
        let e = ErrorStats::compare(&v, &v);
        assert!(e.is_exact());
        assert_eq!(e.avg, 0.0);
        assert_eq!(e.n, 3);
    }

    #[test]
    fn compare_reports_avg_and_max() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 2.0];
        let e = ErrorStats::compare(&a, &b);
        assert!((e.avg - 0.5).abs() < 1e-15);
        assert_eq!(e.max, 1.0);
    }

    #[test]
    #[should_panic]
    fn compare_rejects_length_mismatch() {
        let _ = ErrorStats::compare(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn merge_pools_counts() {
        let a = ErrorStats {
            avg: 1.0,
            max: 2.0,
            n: 2,
        };
        let b = ErrorStats {
            avg: 4.0,
            max: 5.0,
            n: 4,
        };
        let m = a.merge(b);
        assert_eq!(m.n, 6);
        assert!((m.avg - 3.0).abs() < 1e-15);
        assert_eq!(m.max, 5.0);
    }

    #[test]
    fn kahan_beats_naive_on_hard_sum() {
        // 1 + 1e-16 repeated: naive accumulation loses the small terms.
        let mut k = KahanSum::new();
        let mut naive = 0.0f64;
        k.add(1.0);
        naive += 1.0;
        for _ in 0..1_000_000 {
            k.add(1e-16);
            naive += 1e-16;
        }
        let exact = 1.0 + 1_000_000.0 * 1e-16;
        assert!((k.value() - exact).abs() < (naive - exact).abs());
    }

    #[test]
    fn compare_c64_counts_components() {
        let a = vec![crate::C64::new(1.0, 0.0)];
        let b = vec![crate::C64::new(0.0, 1.0)];
        let e = ErrorStats::compare_c64(&a, &b);
        assert_eq!(e.n, 2);
        assert_eq!(e.max, 1.0);
        assert!((e.avg - 1.0).abs() < 1e-15);
    }
}
