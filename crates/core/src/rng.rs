//! Pseudo-random number generation.
//!
//! The paper initializes floating-point inputs with "pseudo-random values
//! distributed within (-2, 2) using a linear congruential generator method,
//! following the LINPACK benchmark". [`LcgF64`] reproduces that generator.
//! [`SplitMix64`] is a fast general-purpose generator used where the paper
//! does not mandate a specific distribution (e.g. synthetic sparsity
//! patterns).

/// Lehmer / Park–Miller style linear congruential generator producing
/// `f64` values in `(-2, 2)`, after the LINPACK `matgen` convention used by
/// the paper for input initialization.
///
/// The recurrence is `x_{k+1} = (a * x_k) mod m` with the classic
/// "minimal standard" constants `a = 16807`, `m = 2^31 - 1`; the sample is
/// mapped linearly onto `(-2, 2)`.
#[derive(Debug, Clone)]
pub struct LcgF64 {
    state: u64,
}

const LCG_A: u64 = 16807;
const LCG_M: u64 = 0x7FFF_FFFF; // 2^31 - 1 (Mersenne prime)

impl LcgF64 {
    /// Create a generator from a seed. Seed 0 is remapped to 1 because 0 is
    /// a fixed point of the recurrence.
    pub fn new(seed: u64) -> Self {
        let s = seed % LCG_M;
        Self {
            state: if s == 0 { 1 } else { s },
        }
    }

    /// Next raw state in `[1, m)`.
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        self.state = (self.state * LCG_A) % LCG_M;
        self.state
    }

    /// Next sample uniformly distributed in `(0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        self.next_raw() as f64 / LCG_M as f64
    }

    /// Next sample in `(-2, 2)` — the LINPACK-style input distribution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        4.0 * self.next_unit() - 2.0
    }

    /// Fill a slice with `(-2, 2)` samples.
    pub fn fill(&mut self, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = self.next_f64();
        }
    }

    /// Produce a vector of `n` samples in `(-2, 2)`.
    pub fn vec(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_f64()).collect()
    }
}

/// SplitMix64: a tiny, high-quality 64-bit generator (public-domain
/// construction by Steele, Lea & Flood) for structural randomness such as
/// synthetic sparsity patterns and graph edges.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from any 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn next_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the structural uses in this crate.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_range_is_open_interval() {
        let mut g = LcgF64::new(42);
        for _ in 0..10_000 {
            let v = g.next_f64();
            assert!(v > -2.0 && v < 2.0, "sample {v} out of (-2,2)");
        }
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = LcgF64::new(7);
        let mut b = LcgF64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn lcg_zero_seed_does_not_stick() {
        let mut g = LcgF64::new(0);
        let first = g.next_raw();
        let second = g.next_raw();
        assert_ne!(first, 0);
        assert_ne!(first, second);
    }

    #[test]
    fn lcg_mean_is_near_zero() {
        let mut g = LcgF64::new(123);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
    }

    #[test]
    fn lcg_matches_lehmer_recurrence() {
        let mut g = LcgF64::new(1);
        assert_eq!(g.next_raw(), 16807);
        assert_eq!(g.next_raw(), 282_475_249);
    }

    #[test]
    fn splitmix_next_range_in_bounds() {
        let mut g = SplitMix64::new(1);
        for _ in 0..10_000 {
            let v = g.next_range(17);
            assert!(v < 17);
        }
    }

    #[test]
    fn splitmix_unit_in_bounds() {
        let mut g = SplitMix64::new(99);
        for _ in 0..10_000 {
            let v = g.next_unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn splitmix_distinct_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
