//! SIMD-width inner kernels with runtime dispatch.
//!
//! The three dominant inner loops of the suite — the strided `m8n8k4`
//! MMA core ([`mma_f64_m8n8k4_strided`]), the CSR-vector SpMV row dot
//! product ([`spmv_csr_row`]) and the stencil star-row apply
//! ([`star_row`]) — vectorize across **independent output elements**:
//! distinct accumulation chains land in distinct SIMD lanes, and the
//! within-chain FMA order (the `k`-ascending chain real FP64 tensor
//! cores execute, see [`crate::mma`]) is never reassociated. Each lane
//! performs exactly the scalar instruction sequence — IEEE-754 FMA for
//! `f64::mul_add`, one rounding per operation — so every path is
//! **bit-identical** to the scalar fallback, and the paper's TC ≡ CC
//! invariant (Observation 7) extends to TC ≡ CC ≡ every SIMD path.
//! "Dissecting Tensor Cores via Microbenchmarks" confirms the hardware
//! performs the same lane-parallel accumulation.
//!
//! **Dispatch.** [`active_path`] resolves once per process (a
//! [`OnceLock`]) from CPU feature detection
//! (`is_x86_feature_detected!` / `is_aarch64_feature_detected!`),
//! overridable with `CUBIE_SIMD=scalar|avx2|avx512|neon`. An
//! unparseable value warns on stderr and falls back to detection (the
//! same convention as every other `CUBIE_*` knob); a parseable path the
//! host cannot run warns and falls back too. The resolution is
//! announced once on stderr —
//! `cubie: simd path avx2 (forced via CUBIE_SIMD)` — and the CI
//! forced-path matrix greps that line so a silent scalar fallback fails
//! the job instead of green-washing it.
//!
//! **Compile gating.** AVX2 requires the `fma` feature alongside
//! (`avx2` alone does not imply FMA units). The AVX-512 intrinsics
//! stabilized in Rust 1.89, above the workspace MSRV, so that path
//! compiles only under the `cubie_avx512` cfg emitted by this crate's
//! `build.rs`; older compilers top out at AVX2. NEON compiles on
//! `aarch64` only. [`compiled_paths`] lists what this binary carries,
//! [`supported_paths`] what the host can actually run — the cross-path
//! differential suite iterates the latter.

use std::sync::OnceLock;

/// One vectorization strategy for the inner kernels. Order matters:
/// later variants are wider (preferred by [`detected_path`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdPath {
    /// Portable scalar fallback — the reference all other paths must
    /// match bit-for-bit.
    Scalar,
    /// 256-bit AVX2 + FMA (4 × f64 lanes).
    Avx2,
    /// 512-bit AVX-512F (8 × f64 lanes); needs rustc ≥ 1.89 to compile.
    Avx512,
    /// 128-bit aarch64 NEON (2 × f64 lanes).
    Neon,
}

impl SimdPath {
    /// Stable lower-case name (the `CUBIE_SIMD` vocabulary).
    pub const fn label(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
            SimdPath::Avx512 => "avx512",
            SimdPath::Neon => "neon",
        }
    }

    /// Parse a `CUBIE_SIMD` value (case-insensitive). `None` for
    /// anything outside the four known names.
    pub fn parse(s: &str) -> Option<SimdPath> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdPath::Scalar),
            "avx2" => Some(SimdPath::Avx2),
            "avx512" => Some(SimdPath::Avx512),
            "neon" => Some(SimdPath::Neon),
            _ => None,
        }
    }

    /// Whether this binary compiled the path **and** the host CPU can
    /// execute it.
    pub fn supported(self) -> bool {
        match self {
            SimdPath::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(all(target_arch = "x86_64", cubie_avx512))]
            SimdPath::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "aarch64")]
            SimdPath::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)] // which arms exist is cfg-dependent
            _ => false,
        }
    }
}

/// The paths compiled into this binary, narrowest first (always starts
/// with [`SimdPath::Scalar`]).
pub fn compiled_paths() -> &'static [SimdPath] {
    #[cfg(all(target_arch = "x86_64", cubie_avx512))]
    {
        &[SimdPath::Scalar, SimdPath::Avx2, SimdPath::Avx512]
    }
    #[cfg(all(target_arch = "x86_64", not(cubie_avx512)))]
    {
        &[SimdPath::Scalar, SimdPath::Avx2]
    }
    #[cfg(target_arch = "aarch64")]
    {
        &[SimdPath::Scalar, SimdPath::Neon]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        &[SimdPath::Scalar]
    }
}

/// The compiled paths this host can actually execute (what the
/// cross-path differential tests and benches iterate). Always contains
/// at least [`SimdPath::Scalar`].
pub fn supported_paths() -> Vec<SimdPath> {
    compiled_paths()
        .iter()
        .copied()
        .filter(|p| p.supported())
        .collect()
}

/// The widest supported path — what dispatch uses absent an override.
pub fn detected_path() -> SimdPath {
    compiled_paths()
        .iter()
        .rev()
        .copied()
        .find(|p| p.supported())
        .unwrap_or(SimdPath::Scalar)
}

/// How [`active_path`] arrived at its choice (the parenthetical of the
/// dispatch log line).
const FORCED: &str = "forced via CUBIE_SIMD";
/// See [`FORCED`].
const DETECTED: &str = "auto-detected";

/// Resolve the dispatch decision from an optional `CUBIE_SIMD` value:
/// `(path, how, warning)`. Pure, for unit tests; [`active_path`] feeds
/// it the process environment and prints.
fn resolve(env: Option<&str>) -> (SimdPath, &'static str, Option<String>) {
    match env {
        None => (detected_path(), DETECTED, None),
        Some(v) => match SimdPath::parse(v) {
            Some(p) if p.supported() => (p, FORCED, None),
            Some(p) => (
                detected_path(),
                DETECTED,
                Some(format!(
                    "CUBIE_SIMD={v}: the {} path is not available on this host \
                     (compiled: {}); using {}",
                    p.label(),
                    compiled_paths()
                        .iter()
                        .map(|p| p.label())
                        .collect::<Vec<_>>()
                        .join("/"),
                    detected_path().label()
                )),
            ),
            None => (
                detected_path(),
                DETECTED,
                Some(format!(
                    "ignoring CUBIE_SIMD={v}: not a valid value for this variable"
                )),
            ),
        },
    }
}

/// The resolved dispatch decision plus its announcement line, computed
/// once per process. The announcement goes through [`cubie_obs::log`]
/// rather than a raw `eprintln!`: the line still reaches stderr (obs
/// echoes by default, so the CI forced-path grep keeps its teeth), but a
/// long-running `cubied` can disable the echo per request handler —
/// keeping client responses clean JSON — and replay the retained line in
/// its own per-startup banner via [`dispatch_line`].
fn resolution() -> &'static (SimdPath, String) {
    static ACTIVE: OnceLock<(SimdPath, String)> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        let env = std::env::var("CUBIE_SIMD").ok();
        let (path, how, warning) = resolve(env.as_deref());
        if let Some(w) = warning {
            cubie_obs::log(format!("warning: {w}"));
        }
        let line = format!("cubie: simd path {} ({how})", path.label());
        cubie_obs::log(line.clone());
        (path, line)
    })
}

/// The SIMD path every dispatched kernel call uses, resolved once per
/// process and announced on stderr (`cubie: simd path <name> (<how>)`).
/// Override with `CUBIE_SIMD`; results are bit-identical either way, so
/// the override is a perf/test knob, never a correctness one.
pub fn active_path() -> SimdPath {
    resolution().0
}

/// The dispatch announcement line exactly as it was logged (resolving
/// the path first if nothing has yet). Long-running consumers re-emit
/// this per startup instead of once per process.
pub fn dispatch_line() -> &'static str {
    &resolution().1
}

/// One neighbour-pair term of a stencil star row: contributes
/// `weight × (a[i] + b[i])` to output element `i`, as a single FMA onto
/// the running accumulator (exactly the scalar op order of the
/// baseline stencil — the pair-sum rounds once, the FMA once).
pub struct StarTap<'a> {
    /// Coefficient shared by both neighbours (star stencils are
    /// symmetric per axis).
    pub weight: f64,
    /// First neighbour row, `out.len()` elements.
    pub a: &'a [f64],
    /// Second neighbour row, `out.len()` elements.
    pub b: &'a [f64],
}

/// One FP64 `m8n8k4` MMA on strided operands — the arithmetic core
/// every FP64 MMA entry point in [`crate::mma`] routes through — on the
/// process-wide [`active_path`]. `a` rows (8×4) at `a0 + i·lda`, `b`
/// rows (4×8) at `b0 + kk·ldb`, `c` rows (8×8) at `c0 + i·ldc`.
#[inline]
#[allow(clippy::too_many_arguments)] // nine scalars beat a one-use struct on this hot path
pub fn mma_f64_m8n8k4_strided(
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
) {
    dispatch_mma(active_path(), a, a0, lda, b, b0, ldb, c, c0, ldc);
}

/// [`mma_f64_m8n8k4_strided`] on an explicit path — the entry point of
/// the cross-path differential tests and the simd-vs-scalar benches.
/// Panics if `path` is not supported on this host.
#[allow(clippy::too_many_arguments)] // mirrors the dispatched signature
pub fn mma_f64_m8n8k4_strided_on(
    path: SimdPath,
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
) {
    assert_supported(path);
    dispatch_mma(path, a, a0, lda, b, b0, ldb, c, c0, ldc);
}

/// One CSR-vector SpMV row dot product on the process-wide
/// [`active_path`]: 32 lanes stride the row's nonzeros (`lane = i % 32`,
/// each lane a fused accumulation chain in nonzero order), combined by
/// the fixed shuffle-tree reduction — the cuSPARSE-style warp-per-row
/// kernel of the SpMV baseline.
#[inline]
pub fn spmv_csr_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    dispatch_spmv(active_path(), vals, cols, x)
}

/// [`spmv_csr_row`] on an explicit path (differential tests/benches).
/// Panics if `path` is not supported on this host.
pub fn spmv_csr_row_on(path: SimdPath, vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    assert_supported(path);
    dispatch_spmv(path, vals, cols, x)
}

/// One stencil star row on the process-wide [`active_path`]:
/// `out[i] = fma(t_n, …, fma(t_1, a_1[i]+b_1[i], center_weight·center[i]))`
/// — the per-point op order of the stencil baseline, across a whole row
/// of independent output points.
#[inline]
pub fn star_row(center_weight: f64, center: &[f64], taps: &[StarTap], out: &mut [f64]) {
    check_star(center, taps, out);
    dispatch_star(active_path(), center_weight, center, taps, out);
}

/// [`star_row`] on an explicit path (differential tests/benches).
/// Panics if `path` is not supported on this host.
pub fn star_row_on(
    path: SimdPath,
    center_weight: f64,
    center: &[f64],
    taps: &[StarTap],
    out: &mut [f64],
) {
    assert_supported(path);
    check_star(center, taps, out);
    dispatch_star(path, center_weight, center, taps, out);
}

/// Shape precondition of the star-row kernels (checked once up front so
/// the vector bodies can read rows unchecked).
fn check_star(center: &[f64], taps: &[StarTap], out: &mut [f64]) {
    assert!(center.len() >= out.len(), "center row shorter than output");
    for t in taps {
        assert!(
            t.a.len() >= out.len() && t.b.len() >= out.len(),
            "tap row shorter than output"
        );
    }
}

#[cold]
fn unsupported(path: SimdPath) -> ! {
    panic!(
        "SIMD path {} is not supported here (compiled: {}; host supports: {})",
        path.label(),
        compiled_paths()
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join("/"),
        supported_paths()
            .iter()
            .map(|p| p.label())
            .collect::<Vec<_>>()
            .join("/"),
    )
}

#[inline]
fn assert_supported(path: SimdPath) {
    if !path.supported() {
        unsupported(path);
    }
}

/// # Dispatch safety
///
/// Every `unsafe` block below calls a `#[target_feature]` function and
/// is sound because the matched `path` is either [`active_path`] (which
/// [`resolve`] only ever sets to a [`SimdPath::supported`] path) or was
/// checked by [`assert_supported`] in the `_on` wrapper.
#[inline]
#[allow(clippy::too_many_arguments)]
fn dispatch_mma(
    path: SimdPath,
    a: &[f64],
    a0: usize,
    lda: usize,
    b: &[f64],
    b0: usize,
    ldb: usize,
    c: &mut [f64],
    c0: usize,
    ldc: usize,
) {
    match path {
        SimdPath::Scalar => scalar::mma_strided(a, a0, lda, b, b0, ldb, c, c0, ldc),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => unsafe { avx2::mma_strided(a, a0, lda, b, b0, ldb, c, c0, ldc) },
        #[cfg(all(target_arch = "x86_64", cubie_avx512))]
        SimdPath::Avx512 => unsafe { avx512::mma_strided(a, a0, lda, b, b0, ldb, c, c0, ldc) },
        #[cfg(target_arch = "aarch64")]
        SimdPath::Neon => unsafe { neon::mma_strided(a, a0, lda, b, b0, ldb, c, c0, ldc) },
        #[allow(unreachable_patterns)] // which arms exist is cfg-dependent
        other => unsupported(other),
    }
}

/// See the dispatch-safety note on [`dispatch_mma`].
#[inline]
fn dispatch_spmv(path: SimdPath, vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
    match path {
        SimdPath::Scalar => scalar::spmv_row(vals, cols, x),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => unsafe { avx2::spmv_row(vals, cols, x) },
        #[cfg(all(target_arch = "x86_64", cubie_avx512))]
        SimdPath::Avx512 => unsafe { avx512::spmv_row(vals, cols, x) },
        #[cfg(target_arch = "aarch64")]
        SimdPath::Neon => unsafe { neon::spmv_row(vals, cols, x) },
        #[allow(unreachable_patterns)]
        other => unsupported(other),
    }
}

/// See the dispatch-safety note on [`dispatch_mma`].
#[inline]
fn dispatch_star(path: SimdPath, cw: f64, center: &[f64], taps: &[StarTap], out: &mut [f64]) {
    match path {
        SimdPath::Scalar => scalar::star_row(cw, center, taps, out),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => unsafe { avx2::star_row(cw, center, taps, out) },
        #[cfg(all(target_arch = "x86_64", cubie_avx512))]
        SimdPath::Avx512 => unsafe { avx512::star_row(cw, center, taps, out) },
        #[cfg(target_arch = "aarch64")]
        SimdPath::Neon => unsafe { neon::star_row(cw, center, taps, out) },
        #[allow(unreachable_patterns)]
        other => unsupported(other),
    }
}

/// The 32-lane shuffle-tree combine shared by every SpMV row path (the
/// lane partials are path-independent, so one scalar tree keeps the
/// reduction order trivially identical).
#[inline]
fn reduce_lanes(mut lanes: [f64; 32]) -> f64 {
    let mut width = 16;
    while width >= 1 {
        for l in 0..width {
            lanes[l] += lanes[l + width];
        }
        width /= 2;
    }
    lanes[0]
}

/// Portable scalar kernels — the bit-level reference. The MMA core is
/// verbatim the pre-SIMD `mma_f64_m8n8k4_strided_core` of
/// [`crate::mma`] (minus fault injection, which the wrapper applies);
/// the SpMV and star rows are verbatim the pre-SIMD kernel loops.
mod scalar {
    use super::StarTap;

    #[allow(clippy::too_many_arguments)]
    pub(super) fn mma_strided(
        a: &[f64],
        a0: usize,
        lda: usize,
        b: &[f64],
        b0: usize,
        ldb: usize,
        c: &mut [f64],
        c0: usize,
        ldc: usize,
    ) {
        // Fixed-size row views hoist every bounds check out of the FMA
        // loops (one check per row slice instead of three per FMA).
        let br: [&[f64; 8]; 4] =
            std::array::from_fn(|kk| b[b0 + kk * ldb..b0 + kk * ldb + 8].try_into().unwrap());
        for i in 0..8 {
            let ar: &[f64; 4] = a[a0 + i * lda..a0 + i * lda + 4].try_into().unwrap();
            let cr: &mut [f64; 8] = (&mut c[c0 + i * ldc..c0 + i * ldc + 8]).try_into().unwrap();
            for (j, out) in cr.iter_mut().enumerate() {
                let mut acc = *out;
                for (kk, &av) in ar.iter().enumerate() {
                    acc = av.mul_add(br[kk][j], acc);
                }
                *out = acc;
            }
        }
    }

    pub(super) fn spmv_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let mut lanes = [0.0f64; 32];
        for (i, (&c, &v)) in cols.iter().zip(vals).enumerate() {
            let l = i % 32;
            lanes[l] = v.mul_add(x[c as usize], lanes[l]);
        }
        super::reduce_lanes(lanes)
    }

    pub(super) fn star_row(cw: f64, center: &[f64], taps: &[StarTap], out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            let mut v = cw * center[i];
            for t in taps {
                v = t.weight.mul_add(t.a[i] + t.b[i], v);
            }
            *o = v;
        }
    }
}

/// AVX2 + FMA kernels: 4 × f64 lanes. Per lane, `_mm256_fmadd_pd` is
/// one IEEE-754 FMA and `_mm256_add_pd`/`_mm256_mul_pd` one rounding
/// each — exactly the scalar ops, so lanes are bit-identical by
/// construction.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::StarTap;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the host supports `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn mma_strided(
        a: &[f64],
        a0: usize,
        lda: usize,
        b: &[f64],
        b0: usize,
        ldb: usize,
        c: &mut [f64],
        c0: usize,
        ldc: usize,
    ) {
        // Checked subslices establish bounds; the loads/stores then go
        // through their raw pointers (8-wide rows = two 4-lane halves).
        let mut blo = [_mm256_setzero_pd(); 4];
        let mut bhi = [_mm256_setzero_pd(); 4];
        for kk in 0..4 {
            let row = &b[b0 + kk * ldb..b0 + kk * ldb + 8];
            blo[kk] = _mm256_loadu_pd(row.as_ptr());
            bhi[kk] = _mm256_loadu_pd(row.as_ptr().add(4));
        }
        for i in 0..8 {
            let ar: &[f64; 4] = a[a0 + i * lda..a0 + i * lda + 4].try_into().unwrap();
            let cr = &mut c[c0 + i * ldc..c0 + i * ldc + 8];
            let mut lo = _mm256_loadu_pd(cr.as_ptr());
            let mut hi = _mm256_loadu_pd(cr.as_ptr().add(4));
            for (kk, &av) in ar.iter().enumerate() {
                let avv = _mm256_set1_pd(av);
                lo = _mm256_fmadd_pd(avv, blo[kk], lo);
                hi = _mm256_fmadd_pd(avv, bhi[kk], hi);
            }
            _mm256_storeu_pd(cr.as_mut_ptr(), lo);
            _mm256_storeu_pd(cr.as_mut_ptr().add(4), hi);
        }
    }

    /// # Safety
    /// Caller must ensure the host supports `avx2` and `fma`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn spmv_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len().min(cols.len());
        let full = n & !31;
        let mut lanes = [0.0f64; 32];
        if full > 0 {
            // Lane l accumulates nonzeros l, l+32, l+64, … in index
            // order — the scalar chain per lane. The x gathers stay
            // bounds-checked scalar loads (matching the scalar path's
            // panic on a malformed column index).
            let mut acc = [_mm256_setzero_pd(); 8];
            let mut i = 0;
            while i < full {
                for (q, accq) in acc.iter_mut().enumerate() {
                    let o = i + 4 * q;
                    let v = _mm256_loadu_pd(vals.as_ptr().add(o));
                    let xg = _mm256_set_pd(
                        x[cols[o + 3] as usize],
                        x[cols[o + 2] as usize],
                        x[cols[o + 1] as usize],
                        x[cols[o] as usize],
                    );
                    *accq = _mm256_fmadd_pd(v, xg, *accq);
                }
                i += 32;
            }
            for (q, accq) in acc.iter().enumerate() {
                _mm256_storeu_pd(lanes.as_mut_ptr().add(4 * q), *accq);
            }
        }
        for j in full..n {
            let l = j - full;
            lanes[l] = vals[j].mul_add(x[cols[j] as usize], lanes[l]);
        }
        super::reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must ensure the host supports `avx2` and `fma`, and that
    /// `center` and every tap row hold at least `out.len()` elements
    /// (asserted by [`super::check_star`]).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn star_row(cw: f64, center: &[f64], taps: &[StarTap], out: &mut [f64]) {
        let n = out.len();
        let full = n & !3;
        let cwv = _mm256_set1_pd(cw);
        let mut i = 0;
        while i < full {
            let mut v = _mm256_mul_pd(cwv, _mm256_loadu_pd(center.as_ptr().add(i)));
            for t in taps {
                let s = _mm256_add_pd(
                    _mm256_loadu_pd(t.a.as_ptr().add(i)),
                    _mm256_loadu_pd(t.b.as_ptr().add(i)),
                );
                v = _mm256_fmadd_pd(_mm256_set1_pd(t.weight), s, v);
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(i), v);
            i += 4;
        }
        for i in full..n {
            let mut v = cw * center[i];
            for t in taps {
                v = t.weight.mul_add(t.a[i] + t.b[i], v);
            }
            out[i] = v;
        }
    }
}

/// AVX-512F kernels: 8 × f64 lanes (one register per 8-wide MMA row).
/// Compiled only when `build.rs` found a rustc with stable `_mm512_*`
/// intrinsics; see the module docs.
// The `cubie_avx512` cfg already restricts this module to rustc ≥ 1.89,
// where the `_mm512_*` intrinsics are stable — clippy's MSRV lint can't
// see the build.rs gate, so silence it here only.
#[allow(clippy::incompatible_msrv)]
#[cfg(all(target_arch = "x86_64", cubie_avx512))]
mod avx512 {
    use super::StarTap;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the host supports `avx512f`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn mma_strided(
        a: &[f64],
        a0: usize,
        lda: usize,
        b: &[f64],
        b0: usize,
        ldb: usize,
        c: &mut [f64],
        c0: usize,
        ldc: usize,
    ) {
        let mut br = [_mm512_setzero_pd(); 4];
        for kk in 0..4 {
            br[kk] = _mm512_loadu_pd(b[b0 + kk * ldb..b0 + kk * ldb + 8].as_ptr());
        }
        for i in 0..8 {
            let ar: &[f64; 4] = a[a0 + i * lda..a0 + i * lda + 4].try_into().unwrap();
            let cr = &mut c[c0 + i * ldc..c0 + i * ldc + 8];
            let mut acc = _mm512_loadu_pd(cr.as_ptr());
            for (kk, &av) in ar.iter().enumerate() {
                acc = _mm512_fmadd_pd(_mm512_set1_pd(av), br[kk], acc);
            }
            _mm512_storeu_pd(cr.as_mut_ptr(), acc);
        }
    }

    /// # Safety
    /// Caller must ensure the host supports `avx512f`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn spmv_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len().min(cols.len());
        let full = n & !31;
        let mut lanes = [0.0f64; 32];
        if full > 0 {
            let mut acc = [_mm512_setzero_pd(); 4];
            let mut i = 0;
            while i < full {
                for (q, accq) in acc.iter_mut().enumerate() {
                    let o = i + 8 * q;
                    let v = _mm512_loadu_pd(vals.as_ptr().add(o));
                    let xg = _mm512_set_pd(
                        x[cols[o + 7] as usize],
                        x[cols[o + 6] as usize],
                        x[cols[o + 5] as usize],
                        x[cols[o + 4] as usize],
                        x[cols[o + 3] as usize],
                        x[cols[o + 2] as usize],
                        x[cols[o + 1] as usize],
                        x[cols[o] as usize],
                    );
                    *accq = _mm512_fmadd_pd(v, xg, *accq);
                }
                i += 32;
            }
            for (q, accq) in acc.iter().enumerate() {
                _mm512_storeu_pd(lanes.as_mut_ptr().add(8 * q), *accq);
            }
        }
        for j in full..n {
            let l = j - full;
            lanes[l] = vals[j].mul_add(x[cols[j] as usize], lanes[l]);
        }
        super::reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must ensure the host supports `avx512f`, and that
    /// `center` and every tap row hold at least `out.len()` elements
    /// (asserted by [`super::check_star`]).
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn star_row(cw: f64, center: &[f64], taps: &[StarTap], out: &mut [f64]) {
        let n = out.len();
        let full = n & !7;
        let cwv = _mm512_set1_pd(cw);
        let mut i = 0;
        while i < full {
            let mut v = _mm512_mul_pd(cwv, _mm512_loadu_pd(center.as_ptr().add(i)));
            for t in taps {
                let s = _mm512_add_pd(
                    _mm512_loadu_pd(t.a.as_ptr().add(i)),
                    _mm512_loadu_pd(t.b.as_ptr().add(i)),
                );
                v = _mm512_fmadd_pd(_mm512_set1_pd(t.weight), s, v);
            }
            _mm512_storeu_pd(out.as_mut_ptr().add(i), v);
            i += 8;
        }
        for i in full..n {
            let mut v = cw * center[i];
            for t in taps {
                v = t.weight.mul_add(t.a[i] + t.b[i], v);
            }
            out[i] = v;
        }
    }
}

/// aarch64 NEON kernels: 2 × f64 lanes. `vfmaq_f64`/`vfmaq_n_f64` are
/// fused (one rounding), matching `f64::mul_add` per lane.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::StarTap;
    use std::arch::aarch64::*;

    /// # Safety
    /// Caller must ensure the host supports `neon`.
    #[target_feature(enable = "neon")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn mma_strided(
        a: &[f64],
        a0: usize,
        lda: usize,
        b: &[f64],
        b0: usize,
        ldb: usize,
        c: &mut [f64],
        c0: usize,
        ldc: usize,
    ) {
        // 8-wide rows = four 2-lane quarters.
        let mut br = [[vdupq_n_f64(0.0); 4]; 4];
        for kk in 0..4 {
            let row = &b[b0 + kk * ldb..b0 + kk * ldb + 8];
            for q in 0..4 {
                br[kk][q] = vld1q_f64(row.as_ptr().add(2 * q));
            }
        }
        for i in 0..8 {
            let ar: &[f64; 4] = a[a0 + i * lda..a0 + i * lda + 4].try_into().unwrap();
            let cr = &mut c[c0 + i * ldc..c0 + i * ldc + 8];
            let mut acc = [
                vld1q_f64(cr.as_ptr()),
                vld1q_f64(cr.as_ptr().add(2)),
                vld1q_f64(cr.as_ptr().add(4)),
                vld1q_f64(cr.as_ptr().add(6)),
            ];
            for (kk, &av) in ar.iter().enumerate() {
                for (q, accq) in acc.iter_mut().enumerate() {
                    *accq = vfmaq_n_f64(*accq, br[kk][q], av);
                }
            }
            for (q, accq) in acc.iter().enumerate() {
                vst1q_f64(cr.as_mut_ptr().add(2 * q), *accq);
            }
        }
    }

    /// # Safety
    /// Caller must ensure the host supports `neon`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn spmv_row(vals: &[f64], cols: &[u32], x: &[f64]) -> f64 {
        let n = vals.len().min(cols.len());
        let full = n & !31;
        let mut lanes = [0.0f64; 32];
        if full > 0 {
            let mut acc = [vdupq_n_f64(0.0); 16];
            let mut i = 0;
            while i < full {
                for (q, accq) in acc.iter_mut().enumerate() {
                    let o = i + 2 * q;
                    let v = vld1q_f64(vals.as_ptr().add(o));
                    let xp = [x[cols[o] as usize], x[cols[o + 1] as usize]];
                    *accq = vfmaq_f64(*accq, v, vld1q_f64(xp.as_ptr()));
                }
                i += 32;
            }
            for (q, accq) in acc.iter().enumerate() {
                vst1q_f64(lanes.as_mut_ptr().add(2 * q), *accq);
            }
        }
        for j in full..n {
            let l = j - full;
            lanes[l] = vals[j].mul_add(x[cols[j] as usize], lanes[l]);
        }
        super::reduce_lanes(lanes)
    }

    /// # Safety
    /// Caller must ensure the host supports `neon`, and that `center`
    /// and every tap row hold at least `out.len()` elements (asserted
    /// by [`super::check_star`]).
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn star_row(cw: f64, center: &[f64], taps: &[StarTap], out: &mut [f64]) {
        let n = out.len();
        let full = n & !1;
        let mut i = 0;
        while i < full {
            let mut v = vmulq_n_f64(vld1q_f64(center.as_ptr().add(i)), cw);
            for t in taps {
                let s = vaddq_f64(
                    vld1q_f64(t.a.as_ptr().add(i)),
                    vld1q_f64(t.b.as_ptr().add(i)),
                );
                v = vfmaq_n_f64(v, s, t.weight);
            }
            vst1q_f64(out.as_mut_ptr().add(i), v);
            i += 2;
        }
        for i in full..n {
            let mut v = cw * center[i];
            for t in taps {
                v = t.weight.mul_add(t.a[i] + t.b[i], v);
            }
            out[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::LcgF64;

    #[test]
    fn labels_round_trip_and_garbage_rejects() {
        for &p in &[
            SimdPath::Scalar,
            SimdPath::Avx2,
            SimdPath::Avx512,
            SimdPath::Neon,
        ] {
            assert_eq!(SimdPath::parse(p.label()), Some(p));
            assert_eq!(SimdPath::parse(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(SimdPath::parse("sse9"), None);
        assert_eq!(SimdPath::parse(""), None);
    }

    #[test]
    fn compiled_paths_start_scalar_and_detection_is_supported() {
        assert_eq!(compiled_paths()[0], SimdPath::Scalar);
        assert!(detected_path().supported());
        assert!(supported_paths().contains(&SimdPath::Scalar));
        assert!(supported_paths().contains(&detected_path()));
    }

    #[test]
    fn resolve_honours_forced_supported_paths() {
        let (p, how, warn) = resolve(Some("scalar"));
        assert_eq!((p, how), (SimdPath::Scalar, FORCED));
        assert!(warn.is_none());
        let (p, how, warn) = resolve(None);
        assert_eq!((p, how), (detected_path(), DETECTED));
        assert!(warn.is_none());
    }

    #[test]
    fn resolve_warns_and_falls_back_on_garbage() {
        let (p, how, warn) = resolve(Some("avx1024"));
        assert_eq!((p, how), (detected_path(), DETECTED));
        let warn = warn.expect("garbage must warn");
        assert!(warn.contains("ignoring CUBIE_SIMD=avx1024"), "{warn}");
        assert!(warn.contains("not a valid value"), "{warn}");
    }

    #[test]
    fn resolve_warns_and_falls_back_on_unsupported_path() {
        // NEON is never supported on x86_64 hosts and vice versa, so one
        // of the two must exercise the unsupported-fallback arm.
        let foreign = if cfg!(target_arch = "aarch64") {
            "avx2"
        } else {
            "neon"
        };
        let (p, how, warn) = resolve(Some(foreign));
        assert_eq!((p, how), (detected_path(), DETECTED));
        let warn = warn.expect("unsupported path must warn");
        assert!(warn.contains("not available on this host"), "{warn}");
    }

    /// Every supported path must reproduce the scalar bits exactly on
    /// all three kernels (the full property suite lives in
    /// `tests/simd_differential.rs`; this is the in-crate tripwire).
    #[test]
    fn all_supported_paths_are_bit_identical_to_scalar() {
        let mut rng = LcgF64::new(7);
        let (lda, ldb, ldc) = (9, 11, 13);
        let a = rng.vec(8 * lda + 4);
        let b = rng.vec(4 * ldb + 8);
        let c0 = rng.vec(8 * ldc + 8);
        let nnz = 101; // ragged: three full 32-blocks + a 5-element tail
        let vals = rng.vec(nnz);
        let x = rng.vec(257);
        let cols: Vec<u32> = (0..nnz).map(|i| ((i * 89 + 3) % 257) as u32).collect();
        let n = 37;
        let center = rng.vec(n);
        let (ta, tb, tc, td) = (rng.vec(n), rng.vec(n), rng.vec(n), rng.vec(n));

        let run_mma = |p| {
            let mut c = c0.clone();
            mma_f64_m8n8k4_strided_on(p, &a, 2, lda, &b, 1, ldb, &mut c, 3, ldc);
            c
        };
        let star = |p| {
            let taps = [
                StarTap {
                    weight: 0.25,
                    a: &ta,
                    b: &tb,
                },
                StarTap {
                    weight: -1.5,
                    a: &tc,
                    b: &td,
                },
            ];
            let mut out = vec![0.0f64; n];
            star_row_on(p, -4.0, &center, &taps, &mut out);
            out
        };
        let c_ref = run_mma(SimdPath::Scalar);
        let y_ref = spmv_csr_row_on(SimdPath::Scalar, &vals, &cols, &x);
        let s_ref = star(SimdPath::Scalar);
        for p in supported_paths() {
            let c = run_mma(p);
            assert!(
                c.iter()
                    .zip(&c_ref)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "mma path {} diverged from scalar",
                p.label()
            );
            assert_eq!(
                spmv_csr_row_on(p, &vals, &cols, &x).to_bits(),
                y_ref.to_bits(),
                "spmv path {} diverged from scalar",
                p.label()
            );
            assert!(
                s_ref
                    .iter()
                    .zip(&star(p))
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "star path {} diverged from scalar",
                p.label()
            );
        }
    }

    #[test]
    fn empty_and_single_element_rows_agree() {
        let x = [1.5, -0.5, 2.0];
        for p in supported_paths() {
            assert_eq!(spmv_csr_row_on(p, &[], &[], &x).to_bits(), 0.0f64.to_bits());
            assert_eq!(
                spmv_csr_row_on(p, &[2.0], &[2], &x).to_bits(),
                4.0f64.to_bits()
            );
            let mut out = [0.0f64];
            star_row_on(
                p,
                3.0,
                &[2.0],
                &[StarTap {
                    weight: 0.5,
                    a: &[1.0],
                    b: &[7.0],
                }],
                &mut out,
            );
            assert_eq!(out[0].to_bits(), 0.5f64.mul_add(8.0, 6.0).to_bits());
        }
    }

    #[test]
    fn dispatched_wrappers_use_a_supported_path() {
        // Smoke the dispatched entry points (whatever CUBIE_SIMD says,
        // the resolved path must be runnable and bit-identical).
        let mut rng = LcgF64::new(3);
        let a = rng.vec(32);
        let b = rng.vec(32);
        let mut c = rng.vec(64);
        let c_ref = {
            let mut c2 = c.clone();
            mma_f64_m8n8k4_strided_on(SimdPath::Scalar, &a, 0, 4, &b, 0, 8, &mut c2, 0, 8);
            c2
        };
        mma_f64_m8n8k4_strided(&a, 0, 4, &b, 0, 8, &mut c, 0, 8);
        assert!(c
            .iter()
            .zip(&c_ref)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert!(active_path().supported());
    }
}
