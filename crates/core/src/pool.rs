//! A persistent, lazily initialized worker pool behind the [`crate::par`]
//! helpers.
//!
//! The previous implementation spawned fresh OS threads with
//! `std::thread::scope` on **every** `par_map`/`par_chunks_mut` call —
//! thousands of spawns per sweep, each costing tens of microseconds of
//! kernel work before the first item executes. This module replaces that
//! with long-lived workers parked on a condvar:
//!
//! * **Jobs are cooperative batches.** A submitted job is one `Fn() +
//!   Sync` *worker loop* — the same `(AtomicUsize cursor, chunk)`
//!   claiming loop the scoped version ran — published with a ticket
//!   count. The submitting thread always runs the loop inline; parked
//!   workers claim the remaining tickets and run the identical loop.
//!   Because one execution of the loop drains the whole cursor, a job
//!   completes even if **no** worker ever picks up a ticket — helpers
//!   only add parallelism, never correctness. That property makes nested
//!   `par_*` calls (the sweep nests three deep: workloads → traces →
//!   kernel tiles) trivially deadlock-free: an inner submit parks no one
//!   and waits only for helpers that already started.
//! * **Results stay bit-identical.** Work distribution is dynamic, but
//!   every index is claimed exactly once and written to its own slot, so
//!   any schedule — zero helpers, all helpers, mid-job resizes — yields
//!   the same bytes.
//! * **The pool resizes with [`crate::par::set_max_workers`].** The
//!   target size tracks the worker cap (cap − 1 helpers; the submitter
//!   is the remaining worker); shrinking wakes excess threads so they
//!   exit, growing spawns lazily on the next submit. Threads are named
//!   `cubie-worker` and park when idle, so a quiescent pool costs zero
//!   CPU.
//!
//! Worker panics are caught, forwarded to the submitter, and re-raised
//! after the batch quiesces — the same observable behaviour as a scoped
//! spawn, without poisoning the pool.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Type-erased pointer to a borrowed `Fn() + Sync` worker loop. The
/// submitter guarantees (by waiting on the job's [`Latch`] before
/// returning) that the pointee outlives every execution.
struct WorkPtr(*const (dyn Fn() + Sync));
unsafe impl Send for WorkPtr {}

/// Completion tracking of one job: the number of claimed executions
/// still running, plus the first panic payload any of them raised.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    running: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new() -> Self {
        Latch {
            state: Mutex::new(LatchState {
                running: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }
}

/// One published batch: claimable by up to `tickets` more workers.
struct Job {
    id: u64,
    work: WorkPtr,
    tickets: usize,
    latch: Arc<Latch>,
}

struct State {
    /// Open jobs in submission order; workers claim from the front.
    jobs: Vec<Job>,
    /// Worker threads currently alive (parked or running).
    threads: usize,
    /// Desired helper count: threads beyond this exit when idle.
    target: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Parked workers wait here for jobs (or a shrink notification).
    work: Condvar,
}

static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(0);

/// Whether the pool singleton has ever been touched; lets
/// [`resize_to_cap`] stay a true no-op before first use.
static STARTED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            jobs: Vec::new(),
            threads: 0,
            target: desired_helpers(),
        }),
        work: Condvar::new(),
    })
}

/// The host's core count, resolved once per process (the
/// `available_parallelism` syscall is not free on the dispatch path).
pub fn host_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    })
}

/// Helper-thread target under the current worker cap: the cap (or the
/// core count when uncapped) minus the submitting thread itself.
fn desired_helpers() -> usize {
    let cap = crate::par::max_workers();
    let limit = if cap == 0 { host_parallelism() } else { cap };
    limit.saturating_sub(1)
}

/// Re-align the pool's size target with the worker cap (called by
/// [`crate::par::set_max_workers`]): shrinking wakes parked excess
/// workers so they exit promptly; growth happens lazily on the next
/// submit. No-op if the pool was never used.
pub(crate) fn resize_to_cap() {
    if !STARTED.load(Ordering::Acquire) {
        return; // pool never initialized; nothing to resize
    }
    let p = pool();
    let mut st = p.state.lock().unwrap();
    st.target = desired_helpers();
    if st.threads > st.target {
        drop(st);
        p.work.notify_all();
    }
}

/// Worker threads currently alive in the pool (parked or running).
/// Exposed for the leak/reuse regression tests and `cubie profile`.
pub fn worker_count() -> usize {
    pool().state.lock().unwrap().threads
}

/// The pool-sizing announcement for the *current* cap, in the spelling
/// [`prewarm`] logs. Long-running consumers (`cubied`) re-emit this per
/// startup banner instead of relying on the once-per-process log.
pub fn announce_line() -> String {
    format!(
        "cubie: worker pool {} helper(s) + submitter ({} host core(s))",
        desired_helpers(),
        host_parallelism()
    )
}

/// Spawn workers up to the current target without submitting work, so
/// the first parallel region of a sweep does not pay thread creation.
/// The first prewarm of the process announces the pool sizing through
/// [`cubie_obs::log`] — retained for daemon startup banners, echoed to
/// stderr unless the consumer disabled the echo.
pub fn prewarm() {
    STARTED.store(true, Ordering::Release);
    let p = pool();
    let mut st = p.state.lock().unwrap();
    st.target = desired_helpers();
    let want = st.target;
    while st.threads < want {
        st.threads += 1;
        spawn_worker();
    }
    drop(st);
    static ANNOUNCED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    if !ANNOUNCED.swap(true, Ordering::Relaxed) {
        cubie_obs::log(announce_line());
    }
}

fn spawn_worker() {
    std::thread::Builder::new()
        .name("cubie-worker".into())
        .spawn(worker_loop)
        .expect("spawn cubie worker thread");
}

fn worker_loop() {
    let p = pool();
    loop {
        let (work, latch) = {
            let mut st = p.state.lock().unwrap();
            loop {
                if let Some(job) = st.jobs.first_mut() {
                    let work = WorkPtr(job.work.0);
                    let latch = Arc::clone(&job.latch);
                    // Count this execution as running *before* releasing
                    // the pool lock, so a submitter closing the job
                    // cannot observe an empty latch while we start.
                    latch.state.lock().unwrap().running += 1;
                    job.tickets -= 1;
                    if job.tickets == 0 {
                        st.jobs.remove(0);
                    }
                    break (work, latch);
                }
                if st.threads > st.target {
                    st.threads -= 1;
                    return; // pool shrank; retire this thread
                }
                st = p.work.wait(st).unwrap();
            }
        };
        // The worker loop is an `Fn` over Sync captures; unwind safety is
        // asserted because a panicking item leaves only unclaimed output
        // slots, which the submitter never reads (it re-raises first).
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*work.0)() }));
        let mut l = latch.state.lock().unwrap();
        l.running -= 1;
        if let Err(payload) = result {
            l.panic.get_or_insert(payload);
        }
        let quiesced = l.running == 0;
        drop(l);
        if quiesced {
            latch.done.notify_all();
        }
    }
}

/// Serialize tests that mutate the process-wide worker cap or assert on
/// the pool's size; the pool is a process singleton, so such tests would
/// otherwise race each other under the multi-threaded test harness.
/// `pub` (not `cfg(test)`) so downstream crates' test suites can take
/// the same lock — it guards a process singleton, not a crate one.
pub fn cap_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `work` on the calling thread plus up to `helpers` pool workers,
/// returning once every started execution has finished. `work` must be a
/// self-draining claiming loop: correctness may not depend on how many
/// helpers (zero included) actually run it.
///
/// Panics raised by any execution (inline or helper) are re-raised here
/// after the batch quiesces, so borrowed captures stay valid for the
/// full lifetime of every worker.
pub(crate) fn run_batch(helpers: usize, work: &(dyn Fn() + Sync)) {
    if helpers == 0 {
        work();
        return;
    }
    STARTED.store(true, Ordering::Release);
    let p = pool();
    let latch = Arc::new(Latch::new());
    let id = NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed);
    // SAFETY: the job is removed from the queue and its latch drained
    // before this function returns, so no worker dereferences `work`
    // after the borrow ends.
    let work_static: *const (dyn Fn() + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn() + Sync), *const (dyn Fn() + Sync)>(work) };
    {
        let mut st = p.state.lock().unwrap();
        st.target = desired_helpers();
        let want = helpers.min(st.target);
        while st.threads < want {
            st.threads += 1;
            spawn_worker();
        }
        st.jobs.push(Job {
            id,
            work: WorkPtr(work_static),
            tickets: helpers,
            latch: Arc::clone(&latch),
        });
    }
    p.work.notify_all();

    // The submitter is always worker 0: the batch completes even if every
    // pool thread is busy elsewhere.
    let inline = catch_unwind(AssertUnwindSafe(work));

    // Close the job (stale tickets are help that never arrived), then
    // wait for helpers that did claim.
    {
        let mut st = p.state.lock().unwrap();
        if let Some(pos) = st.jobs.iter().position(|j| j.id == id) {
            st.jobs.remove(pos);
        }
    }
    let mut l = latch.state.lock().unwrap();
    while l.running > 0 {
        l = latch.done.wait(l).unwrap();
    }
    let helper_panic = l.panic.take();
    drop(l);

    if let Err(payload) = inline {
        resume_unwind(payload);
    }
    if let Some(payload) = helper_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::{par_map, set_max_workers};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_completes_with_zero_helpers_available() {
        // Saturate the claim path: even if no helper claims a ticket, the
        // inline execution drains the cursor.
        let n = 257;
        let next = AtomicUsize::new(0);
        let hits = AtomicUsize::new(0);
        run_batch(3, &|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let out = par_map(8, |i| par_map(8, move |j| i * 8 + j).iter().sum::<usize>());
        let total: usize = out.iter().sum();
        assert_eq!(total, (0..64).sum::<usize>());
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let result = std::panic::catch_unwind(|| {
            par_map(1000, |i| {
                if i == 517 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        assert!(result.is_err(), "panic must cross the pool boundary");
        // The pool must remain usable afterwards.
        let v = par_map(100, |i| i + 1);
        assert_eq!(v[99], 100);
    }

    #[test]
    fn pool_threads_are_reused_not_leaked() {
        let _guard = cap_lock();
        let prev = set_max_workers(4);
        let _ = par_map(64, |i| i); // populate the pool
        let after_first = worker_count();
        for _ in 0..100 {
            let _ = par_map(64, |i| i * 2);
        }
        let after_hundred = worker_count();
        set_max_workers(prev);
        assert!(after_first <= 3, "cap 4 means at most 3 helpers");
        assert_eq!(
            after_first, after_hundred,
            "pool size must be stable across calls"
        );
    }

    #[test]
    fn shrink_retires_excess_workers() {
        let _guard = cap_lock();
        let prev = set_max_workers(6);
        let _ = par_map(256, |i| i);
        assert!(worker_count() <= 5);
        set_max_workers(2);
        let _ = par_map(256, |i| i); // give retirees a beat to run
                                     // Parked excess workers exit on wake; poll briefly for the
                                     // condvar round-trip.
        let mut shrunk = worker_count();
        for _ in 0..200 {
            if shrunk <= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            shrunk = worker_count();
        }
        set_max_workers(prev);
        assert!(shrunk <= 1, "cap 2 leaves at most 1 helper, saw {shrunk}");
    }
}
