//! Small row-major dense matrix container shared by the workloads and
//! analysis code.

use serde::{Deserialize, Serialize};

use crate::rng::LcgF64;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Fill with LINPACK-style pseudo-random values in `(-2, 2)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut g = LcgF64::new(seed);
        Self {
            rows,
            cols,
            data: g.vec(rows * cols),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the row-major backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the row-major backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Naive serial matrix product — the CPU ground truth for GEMM-family
    /// accuracy comparisons (FMA-free, ascending-`k` accumulation).
    pub fn matmul_naive(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc = 0.0f64;
                for k in 0..self.cols {
                    acc += self.get(i, k) * rhs.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Naive serial matrix–vector product (CPU ground truth for GEMV).
    pub fn matvec_naive(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = 0.0f64;
                for (k, &xk) in x.iter().enumerate() {
                    acc += self.get(i, k) * xk;
                }
                acc
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = DenseMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(2, 1), 21.0);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = DenseMatrix::random(5, 7, 11);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMatrix::random(4, 4, 2);
        let id = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 } else { 0.0 });
        let p = m.matmul_naive(&id);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p.get(i, j) - m.get(i, j)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn matvec_matches_matmul_column() {
        let a = DenseMatrix::random(6, 3, 5);
        let x = vec![1.0, -2.0, 0.5];
        let bx = DenseMatrix::from_vec(3, 1, x.clone());
        let y = a.matvec_naive(&x);
        let p = a.matmul_naive(&bx);
        for (i, yi) in y.iter().enumerate() {
            assert!((yi - p.get(i, 0)).abs() < 1e-15);
        }
    }

    #[test]
    fn row_slice_is_contiguous() {
        let m = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn frobenius_of_unit_rows() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| if i == j { 3.0 } else { 4.0 });
        assert!((m.frobenius() - 50.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_size() {
        let _ = DenseMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
