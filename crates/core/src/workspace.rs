//! Thread-local reusable buffer arenas for the kernel hot loops.
//!
//! Every functional kernel execution (and the trace-phase structure
//! builders — the DASP bundler, the mBSR block scan, the BFS traversal)
//! needs transient scratch: accumulator tiles, frontier bitmaps, packed
//! operands, row copies. Allocating that scratch from the global
//! allocator per call puts allocator churn — and its lock traffic and
//! page faults — squarely inside the loops the suite measures, which is
//! exactly the noise floor a characterization harness must not have.
//!
//! [`take`]/[`take_in`]/[`take_copy`] check a buffer out of a
//! **thread-local, type-erased pool** (a `TypeId`-keyed map of retired
//! `Vec<T>` stacks). Checked-out buffers are **always fully
//! re-initialized** — `take` clear+resizes to the requested fill,
//! `take_copy` clear+copies the source slice, `take_in` hands back an
//! emptied vec for push-style construction — so results are bit-identical
//! to fresh allocation on every path: only the *capacity* is recycled,
//! never a value. Dropping the [`WsVec`] guard restores the buffer to the
//! owning thread's pool (bounded — see [`MAX_RETAINED_PER_TYPE`]), so
//! steady-state repeated executions run the hot loops allocation-free.
//!
//! Reuse can be disabled ([`set_reuse`], or `CUBIE_WS=off`) to recover
//! the fresh-allocation reference behaviour; the equivalence property
//! suite (`tests/workspace_identity.rs`) asserts both modes produce the
//! same bytes across worker counts and forced SIMD paths. Global
//! counters ([`stats`]) expose hit/miss rates and the retained footprint
//! for the boundedness tests and the allocation-telemetry docs.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;

/// Retired buffers retained per element type per thread. Checkout depth
/// above this (e.g. deep FFT recursion on a cold pool) falls back to
/// fresh allocation for the excess; restores beyond the cap drop the
/// buffer, bounding the retained footprint of every thread.
pub const MAX_RETAINED_PER_TYPE: usize = 32;

/// Whether restored buffers are recycled (`true`) or every checkout
/// allocates fresh (`false` — the reference mode of the equivalence
/// suite).
static REUSE: AtomicBool = AtomicBool::new(true);
static ENV_INIT: Once = Once::new();

/// Checkouts served from a retired buffer.
static HITS: AtomicU64 = AtomicU64::new(0);
/// Checkouts that had to allocate a fresh `Vec`.
static MISSES: AtomicU64 = AtomicU64::new(0);
/// Bytes currently parked in the pools of all live threads.
static RETAINED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Buffers currently parked in the pools of all live threads.
static RETAINED_BUFFERS: AtomicU64 = AtomicU64::new(0);

/// Whether checkouts recycle retired buffers. Initialized once from
/// `CUBIE_WS` (`off`/`0` disables), overridable via [`set_reuse`].
pub fn reuse_enabled() -> bool {
    ENV_INIT.call_once(|| {
        if let Ok(v) = std::env::var("CUBIE_WS") {
            match v.to_ascii_lowercase().as_str() {
                "off" | "0" | "false" => REUSE.store(false, Ordering::Relaxed),
                "on" | "1" | "true" | "" => {}
                other => eprintln!(
                    "warning: ignoring CUBIE_WS={other}: expected on|off (workspace reuse stays on)"
                ),
            }
        }
    });
    REUSE.load(Ordering::Relaxed)
}

/// Turn workspace reuse on or off process-wide; returns the previous
/// setting. Disabling makes every checkout a fresh allocation and every
/// restore a plain drop — the fresh-allocation reference the equivalence
/// property suite compares against. Already-parked buffers stay parked
/// (and are reused again once re-enabled).
pub fn set_reuse(on: bool) -> bool {
    ENV_INIT.call_once(|| {});
    REUSE.swap(on, Ordering::Relaxed)
}

/// One type's stack of retired buffers, with its accounted footprint.
struct PoolEntry {
    /// `Vec<Vec<T>>` behind the type-erased door.
    stack: Box<dyn Any>,
    /// Capacity bytes parked in `stack` (mirrors [`RETAINED_BYTES`]).
    bytes: u64,
    /// Buffers parked in `stack` (mirrors [`RETAINED_BUFFERS`]).
    count: u64,
}

/// Per-thread pool. The explicit `Drop` keeps the global retained
/// counters truthful when a pool worker retires mid-process.
#[derive(Default)]
struct ThreadPool {
    entries: HashMap<TypeId, PoolEntry>,
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for e in self.entries.values() {
            RETAINED_BYTES.fetch_sub(e.bytes, Ordering::Relaxed);
            RETAINED_BUFFERS.fetch_sub(e.count, Ordering::Relaxed);
        }
    }
}

thread_local! {
    static POOL: RefCell<ThreadPool> = RefCell::new(ThreadPool::default());
}

/// A checked-out workspace buffer: derefs to `Vec<T>`, restores its
/// allocation to the owning thread's pool on drop. Elements are `Copy`
/// so clearing on restore is free and re-initialization on checkout is a
/// fill/copy, never a drop-and-reconstruct.
pub struct WsVec<T: Copy + 'static> {
    buf: Vec<T>,
}

impl<T: Copy + 'static> Deref for WsVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: Copy + 'static> DerefMut for WsVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: Copy + 'static> Drop for WsVec<T> {
    fn drop(&mut self) {
        if !reuse_enabled() || self.buf.capacity() == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        // TLS is gone during thread teardown; losing the buffer there is
        // correct (the pool's Drop already balanced the counters).
        let _ = POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            let entry = pool
                .entries
                .entry(TypeId::of::<T>())
                .or_insert_with(|| PoolEntry {
                    stack: Box::new(Vec::<Vec<T>>::new()),
                    bytes: 0,
                    count: 0,
                });
            let stack = entry
                .stack
                .downcast_mut::<Vec<Vec<T>>>()
                .expect("pool entry type matches its TypeId key");
            if stack.len() >= MAX_RETAINED_PER_TYPE {
                return; // bounded: excess buffers are dropped
            }
            let mut buf = buf;
            buf.clear();
            let bytes = (buf.capacity() * std::mem::size_of::<T>()) as u64;
            entry.bytes += bytes;
            entry.count += 1;
            RETAINED_BYTES.fetch_add(bytes, Ordering::Relaxed);
            RETAINED_BUFFERS.fetch_add(1, Ordering::Relaxed);
            stack.push(buf);
        });
    }
}

/// Check an empty `Vec<T>` out of this thread's pool (fresh when the
/// pool is cold or reuse is off), retaining whatever capacity the
/// retired buffer carried. The vec is always empty — push-style
/// construction sees exactly what a fresh `Vec::with_capacity` would.
fn checkout<T: Copy + 'static>() -> Vec<T> {
    if !reuse_enabled() {
        MISSES.fetch_add(1, Ordering::Relaxed);
        return Vec::new();
    }
    POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        let Some(entry) = pool.entries.get_mut(&TypeId::of::<T>()) else {
            MISSES.fetch_add(1, Ordering::Relaxed);
            return Vec::new();
        };
        let stack = entry
            .stack
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("pool entry type matches its TypeId key");
        match stack.pop() {
            Some(buf) => {
                let bytes = (buf.capacity() * std::mem::size_of::<T>()) as u64;
                entry.bytes -= bytes;
                entry.count -= 1;
                RETAINED_BYTES.fetch_sub(bytes, Ordering::Relaxed);
                RETAINED_BUFFERS.fetch_sub(1, Ordering::Relaxed);
                HITS.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    })
}

/// Check out a buffer of `len` elements, **every element initialized to
/// `fill`** — bit-identical to `vec![fill; len]` with the allocation
/// recycled.
pub fn take<T: Copy + 'static>(len: usize, fill: T) -> WsVec<T> {
    let mut buf = checkout::<T>();
    buf.resize(len, fill);
    WsVec { buf }
}

/// Check out an **empty** buffer with at least `capacity` reserved, for
/// push-style construction — bit-identical to
/// `Vec::with_capacity(capacity)` with the allocation recycled.
pub fn take_in<T: Copy + 'static>(capacity: usize) -> WsVec<T> {
    let mut buf = checkout::<T>();
    buf.reserve(capacity);
    WsVec { buf }
}

/// Check out a buffer holding an exact copy of `src` — bit-identical to
/// `src.to_vec()` with the allocation recycled.
pub fn take_copy<T: Copy + 'static>(src: &[T]) -> WsVec<T> {
    let mut buf = checkout::<T>();
    buf.extend_from_slice(src);
    WsVec { buf }
}

/// Snapshot of the workspace counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsStats {
    /// Checkouts served from a retired buffer.
    pub hits: u64,
    /// Checkouts that allocated fresh.
    pub misses: u64,
    /// Bytes currently parked across all thread pools.
    pub retained_bytes: u64,
    /// Buffers currently parked across all thread pools.
    pub retained_buffers: u64,
}

/// Current workspace counters (process-wide, all threads).
pub fn stats() -> WsStats {
    WsStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        retained_bytes: RETAINED_BYTES.load(Ordering::Relaxed),
        retained_buffers: RETAINED_BUFFERS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Reuse-toggling tests share the process-global switch; serialize.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn take_is_fully_initialized() {
        let _g = lock();
        // Dirty a buffer, restore it, and take a differently sized one:
        // no stale value may survive.
        {
            let mut a = take::<f64>(16, 7.5);
            a[3] = -1.0;
        }
        let b = take::<f64>(8, 2.0);
        assert!(b.iter().all(|&v| v == 2.0));
        let c = take::<f64>(32, 0.0);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn checkout_reuses_capacity() {
        let _g = lock();
        let prev = set_reuse(true);
        let cap = {
            let mut a = take_in::<u32>(0);
            a.extend(0..1000);
            a.capacity()
        };
        let hits0 = stats().hits;
        let b = take::<u32>(100, 9);
        // LIFO: the buffer just restored comes straight back.
        assert!(b.capacity() >= cap, "capacity {} < {cap}", b.capacity());
        assert_eq!(b.len(), 100);
        assert!(stats().hits > hits0, "second checkout must be a pool hit");
        set_reuse(prev);
    }

    #[test]
    fn take_copy_matches_to_vec() {
        let _g = lock();
        let src = [1.5f64, -2.0, 3.25, f64::MIN_POSITIVE];
        let c = take_copy(&src);
        assert_eq!(&c[..], &src[..]);
    }

    #[test]
    fn disabled_reuse_never_parks_or_recycles() {
        let _g = lock();
        let prev = set_reuse(false);
        let misses0 = stats().misses;
        let parked0 = stats().retained_buffers;
        {
            let mut a = take::<u64>(64, 1);
            a.push(2);
        }
        let _b = take::<u64>(64, 1);
        assert!(stats().misses >= misses0 + 2, "both checkouts are misses");
        assert_eq!(
            stats().retained_buffers,
            parked0,
            "nothing parks while reuse is off"
        );
        set_reuse(prev);
    }

    #[test]
    fn retained_footprint_is_bounded_per_type() {
        let _g = lock();
        let prev = set_reuse(true);
        // Checkout depth beyond the cap, then restore all: the pool may
        // keep at most MAX_RETAINED_PER_TYPE buffers of this type.
        let before = stats().retained_buffers;
        let held: Vec<WsVec<i32>> = (0..2 * MAX_RETAINED_PER_TYPE)
            .map(|_| take::<i32>(16, 0))
            .collect();
        drop(held);
        let after = stats().retained_buffers;
        assert!(
            after <= before + MAX_RETAINED_PER_TYPE as u64,
            "retained grew {before} -> {after}"
        );
        set_reuse(prev);
    }

    #[test]
    fn distinct_types_do_not_collide() {
        let _g = lock();
        let prev = set_reuse(true);
        {
            let _a = take::<f64>(8, 1.0);
            let _b = take::<u32>(8, 2);
            let _c = take::<[f64; 3]>(8, [0.0; 3]);
        }
        let a = take::<f64>(4, 3.0);
        let b = take::<u32>(4, 4);
        let c = take::<[f64; 3]>(4, [5.0; 3]);
        assert!(a.iter().all(|&v| v == 3.0));
        assert!(b.iter().all(|&v| v == 4));
        assert!(c.iter().all(|&v| v == [5.0; 3]));
        set_reuse(prev);
    }

    #[test]
    fn nested_checkouts_get_distinct_buffers() {
        let _g = lock();
        let prev = set_reuse(true);
        let mut a = take::<f64>(16, 1.0);
        let mut b = take::<f64>(16, 2.0);
        a[0] = 10.0;
        b[0] = 20.0;
        assert_eq!((a[0], b[0]), (10.0, 20.0));
        assert!(a[1..].iter().all(|&v| v == 1.0));
        assert!(b[1..].iter().all(|&v| v == 2.0));
        set_reuse(prev);
    }

    #[test]
    fn worker_threads_have_private_pools() {
        let _g = lock();
        let prev = set_reuse(true);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let v = take::<u64>(64 + i, t as u64);
                        assert!(v.iter().all(|&x| x == t as u64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Thread teardown dropped the per-thread pools; the global
        // retained counters must have been rebalanced, leaving whatever
        // other live threads hold (bounded, not negative-wrapped).
        assert!(stats().retained_bytes < u64::MAX / 2, "counter underflow");
        set_reuse(prev);
    }
}
