//! Mixed-precision scalar formats and bit-accurate rounding.
//!
//! Real tensor cores multiply reduced-precision operands (FP16 / BF16 /
//! TF32) and accumulate in FP32. Two microbenchmark studies cited in
//! PAPERS.md — "Accurate Models of NVIDIA Tensor Cores" (Khattak &
//! Mikaitis) and "An SMT Formalization of Mixed-Precision Matrix
//! Multiplication" — pin down the semantics bit-for-bit:
//!
//! * operand products are computed **exactly** (a product of two ≤ 11-bit
//!   significands needs ≤ 22 bits — no rounding before accumulation);
//! * Volta-generation units accumulate **serially**, truncating
//!   (round-toward-zero) after every addition and flushing subnormal step
//!   results to zero;
//! * Ampere-and-later units compute each `k = 4` slice as one **fused
//!   five-term dot product** (`c + a0·b0 + a1·b1 + a2·b2 + a3·b3`) with a
//!   single round-to-nearest-even at the end, subnormals supported;
//! * wider `k` (e.g. `m16n8k16`) chains those fused slices in ascending
//!   `k` order, rounding once per slice.
//!
//! This module provides the scalar formats ([`F16`], [`Bf16`], [`Tf32`]),
//! the rounding primitives ([`round_to_format`], [`exact_sum_round_f32`] —
//! a 768-bit fixed-point superaccumulator that makes the "single rounding"
//! above *exactly* single), and the per-generation accumulation step
//! ([`MmaGen::dot4_f32`]). [`Precision`] names the operand axis the sweep
//! engine exposes as `--filter precision=…`.

use serde::{Deserialize, Serialize};

/// IEEE-754 rounding-direction attribute used by the MMA models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Round {
    /// Round to nearest, ties to even (`rn` in PTX).
    Nearest,
    /// Round toward zero / truncate (`rz` in PTX; Volta accumulators).
    Zero,
}

/// `2^e` as an exact `f64`, valid for `e` in `[-1074, 1023]`.
#[inline]
fn pow2(e: i32) -> f64 {
    debug_assert!((-1074..=1023).contains(&e));
    if e >= -1022 {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (e + 1074))
    }
}

/// `floor(log2(x))` for finite positive `x`, exact (reads the bits).
#[inline]
fn ilogb(x: f64) -> i32 {
    debug_assert!(x.is_finite() && x > 0.0);
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i32;
    if e == 0 {
        // Subnormal: value = frac · 2^-1074.
        let frac = bits & ((1u64 << 52) - 1);
        63 - frac.leading_zeros() as i32 - 1074
    } else {
        e - 1023
    }
}

/// Round an `f64` value to a binary floating-point format with `p`
/// significand bits, minimum normal exponent `emin` and maximum exponent
/// `emax`, in rounding direction `mode`. The result is returned as an
/// `f64` (every value of every format modeled here — including its
/// subnormals — is exactly representable in `f64`).
///
/// Overflow follows IEEE 754: round-to-nearest overflows to infinity,
/// round-toward-zero saturates at the format's largest finite value.
/// Signed zeros, infinities and NaN pass through.
pub fn round_to_format(v: f64, p: i32, emin: i32, emax: i32, mode: Round) -> f64 {
    if v.is_nan() || v.is_infinite() || v == 0.0 {
        return v;
    }
    let mag = v.abs();
    let e = ilogb(mag);
    // Exponent of the target format's ulp at this magnitude; the `emin`
    // clamp produces gradual underflow (subnormals) automatically.
    let quantum = (e - (p - 1)).max(emin - (p - 1));
    // Exact scaling (power of two, no overflow for the formats we model).
    let scaled = mag * pow2(-quantum);
    let rounded = match mode {
        Round::Nearest => scaled.round_ties_even(),
        Round::Zero => scaled.trunc(),
    };
    let result = rounded * pow2(quantum);
    let max_finite = (2.0 - pow2(1 - p)) * pow2(emax);
    let out = if result > max_finite {
        match mode {
            Round::Nearest => f64::INFINITY,
            Round::Zero => max_finite,
        }
    } else {
        result
    };
    if v < 0.0 {
        -out
    } else {
        out
    }
}

/// IEEE-754 binary16 (half precision): 1 sign, 5 exponent, 10 fraction
/// bits (`p = 11`, `emin = -14`, `emax = 15`). Stored as its bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct F16(u16);

impl F16 {
    /// Significand bits (including the implicit bit).
    pub const P: i32 = 11;
    /// Minimum normal exponent.
    pub const EMIN: i32 = -14;
    /// Maximum exponent.
    pub const EMAX: i32 = 15;

    /// Convert from `f64` with round-to-nearest-even (the PTX `cvt.rn`
    /// default used when quantizing operands).
    pub fn from_f64_rn(v: f64) -> Self {
        Self::encode(round_to_format(
            v,
            Self::P,
            Self::EMIN,
            Self::EMAX,
            Round::Nearest,
        ))
    }

    /// Convert from `f64` with round-toward-zero (`cvt.rz`).
    pub fn from_f64_rz(v: f64) -> Self {
        Self::encode(round_to_format(
            v,
            Self::P,
            Self::EMIN,
            Self::EMAX,
            Round::Zero,
        ))
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Reconstruct from a raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Self(bits)
    }

    /// The exactly-represented value as `f64`.
    pub fn to_f64(self) -> f64 {
        let sign = if self.0 >> 15 == 1 { -1.0 } else { 1.0 };
        let e = ((self.0 >> 10) & 0x1f) as i32;
        let frac = (self.0 & 0x3ff) as f64;
        match e {
            0 => sign * frac * pow2(Self::EMIN - (Self::P - 1)),
            0x1f => {
                if frac == 0.0 {
                    sign * f64::INFINITY
                } else {
                    f64::NAN
                }
            }
            _ => sign * (1024.0 + frac) * pow2(e - 15 - (Self::P - 1)),
        }
    }

    /// The exactly-represented value as `f32` (every f16 embeds exactly).
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Encode a value already representable in binary16 (or ±inf / NaN).
    fn encode(v: f64) -> Self {
        if v.is_nan() {
            return Self(0x7e00); // canonical quiet NaN
        }
        let sign = ((v.to_bits() >> 63) as u16) << 15;
        let mag = v.abs();
        if mag == 0.0 {
            return Self(sign);
        }
        if mag.is_infinite() {
            return Self(sign | 0x7c00);
        }
        let e = ilogb(mag);
        if e < Self::EMIN {
            // Subnormal: frac · 2^(EMIN - P + 1).
            let frac = (mag * pow2(-(Self::EMIN - (Self::P - 1)))) as u16;
            Self(sign | frac)
        } else {
            let m = (mag * pow2((Self::P - 1) - e)) as u64; // in [2^10, 2^11)
            Self(sign | (((e + 15) as u16) << 10) | ((m as u16) & 0x3ff))
        }
    }
}

/// bfloat16: 1 sign, 8 exponent, 7 fraction bits (`p = 8`, the `f32`
/// exponent range). Exactly the top 16 bits of an `f32` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bf16(u16);

impl Bf16 {
    /// Significand bits (including the implicit bit).
    pub const P: i32 = 8;
    /// Minimum normal exponent (same as `f32`).
    pub const EMIN: i32 = -126;
    /// Maximum exponent (same as `f32`).
    pub const EMAX: i32 = 127;

    /// Convert from `f64` with round-to-nearest-even.
    pub fn from_f64_rn(v: f64) -> Self {
        Self::encode(round_to_format(
            v,
            Self::P,
            Self::EMIN,
            Self::EMAX,
            Round::Nearest,
        ))
    }

    /// Convert from `f64` with round-toward-zero.
    pub fn from_f64_rz(v: f64) -> Self {
        Self::encode(round_to_format(
            v,
            Self::P,
            Self::EMIN,
            Self::EMAX,
            Round::Zero,
        ))
    }

    /// The raw bit pattern (the high half of the equivalent `f32`).
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Reconstruct from a raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        Self(bits)
    }

    /// The exactly-represented value as `f32`.
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// The exactly-represented value as `f64`.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    fn encode(v: f64) -> Self {
        if v.is_nan() {
            return Self(0x7fc0);
        }
        // `v` is already a bf16-representable value: its f32 pattern has
        // a zero low half.
        Self((((v as f32).to_bits()) >> 16) as u16)
    }
}

/// TF32: NVIDIA's tensor-float format — `f32` exponent range with an
/// 11-bit significand (`p = 11`). Stored as an `f32` bit pattern whose
/// low 13 fraction bits are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tf32(u32);

impl Tf32 {
    /// Significand bits (including the implicit bit).
    pub const P: i32 = 11;
    /// Minimum normal exponent (same as `f32`).
    pub const EMIN: i32 = -126;
    /// Maximum exponent (same as `f32`).
    pub const EMAX: i32 = 127;

    /// Convert from `f64` with round-to-nearest-even (the `cvt.rna` /
    /// `cvt.rn` conversion real TF32 pipelines apply to f32 operands).
    pub fn from_f64_rn(v: f64) -> Self {
        Self::encode(round_to_format(
            v,
            Self::P,
            Self::EMIN,
            Self::EMAX,
            Round::Nearest,
        ))
    }

    /// Convert from `f64` with round-toward-zero.
    pub fn from_f64_rz(v: f64) -> Self {
        Self::encode(round_to_format(
            v,
            Self::P,
            Self::EMIN,
            Self::EMAX,
            Round::Zero,
        ))
    }

    /// The raw `f32`-layout bit pattern (low 13 fraction bits zero).
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// Reconstruct from a raw bit pattern.
    pub const fn from_bits(bits: u32) -> Self {
        Self(bits)
    }

    /// The exactly-represented value as `f32`.
    pub const fn to_f32(self) -> f32 {
        f32::from_bits(self.0)
    }

    /// The exactly-represented value as `f64`.
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    fn encode(v: f64) -> Self {
        if v.is_nan() {
            return Self(0x7fc0_0000);
        }
        // An 11-bit-significand value's f32 pattern has zero low 13 bits.
        Self((v as f32).to_bits())
    }
}

/// The operand-precision axis of the MMA subsystem (and of `cubie sweep
/// --filter precision=…`). `F64` is the paper's native precision; the
/// reduced formats multiply in the named format and accumulate in `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// FP64 operands, FP64 accumulate (`m8n8k4`) — the paper's precision.
    F64,
    /// Binary16 operands, FP32 accumulate (`m16n8k16`).
    F16,
    /// bfloat16 operands, FP32 accumulate (`m16n8k16`).
    Bf16,
    /// TF32 operands, FP32 accumulate (`m16n8k8`).
    Tf32,
}

impl Precision {
    /// Every precision, sweep order.
    pub const ALL: [Precision; 4] = [
        Precision::F64,
        Precision::F16,
        Precision::Bf16,
        Precision::Tf32,
    ];

    /// Short lowercase label used in filters, sweep tables and artifacts.
    pub const fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F16 => "f16",
            Precision::Bf16 => "bf16",
            Precision::Tf32 => "tf32",
        }
    }

    /// Parse a filter token (accepts the common aliases).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "fp64" | "double" => Some(Precision::F64),
            "f16" | "fp16" | "half" => Some(Precision::F16),
            "bf16" | "bfloat16" => Some(Precision::Bf16),
            "tf32" | "tensorfloat32" => Some(Precision::Tf32),
            _ => None,
        }
    }

    /// Bytes per stored operand element.
    pub const fn elem_bytes(self) -> u64 {
        match self {
            Precision::F64 => 8,
            Precision::F16 | Precision::Bf16 => 2,
            Precision::Tf32 => 4,
        }
    }

    /// Quantize an `f64` input to this operand format with
    /// round-to-nearest-even, returning the exactly-represented value.
    pub fn quantize(self, v: f64) -> f64 {
        match self {
            Precision::F64 => v,
            Precision::F16 => F16::from_f64_rn(v).to_f64(),
            Precision::Bf16 => Bf16::from_f64_rn(v).to_f64(),
            Precision::Tf32 => Tf32::from_f64_rn(v).to_f64(),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tensor-core generation, selecting the published accumulation semantics
/// ([module docs](self)). `cubie_device::Arch::mma_gen()` maps device
/// architectures onto this axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MmaGen {
    /// Volta-style: serial accumulation, round-toward-zero after every
    /// addition, subnormal step results flushed to zero.
    Volta,
    /// Ampere and later: fused five-term dot product per `k = 4` slice,
    /// one round-to-nearest-even per slice, subnormals preserved.
    Ampere,
}

impl MmaGen {
    /// One `k = 4` accumulation slice: fold the four exact products
    /// `prods` into the `f32` accumulator `c` with this generation's
    /// rounding/fusion semantics. Products must be exact `f64` values
    /// (guaranteed for all operand formats modeled here).
    pub fn dot4_f32(self, c: f32, prods: &[f64; 4]) -> f32 {
        match self {
            MmaGen::Volta => {
                let mut acc = c;
                for &p in prods {
                    acc = ftz_f32(exact_sum_round_f32(&[acc as f64, p], Round::Zero));
                }
                acc
            }
            MmaGen::Ampere => exact_sum_round_f32(
                &[c as f64, prods[0], prods[1], prods[2], prods[3]],
                Round::Nearest,
            ),
        }
    }
}

/// Flush an `f32` subnormal to (sign-preserving) zero — Volta accumulator
/// behavior per the tensor-core microbenchmark literature.
#[inline]
pub fn ftz_f32(v: f32) -> f32 {
    if v.is_subnormal() {
        if v.is_sign_negative() {
            -0.0
        } else {
            0.0
        }
    } else {
        v
    }
}

// ---------------------------------------------------------------------
// Exact multi-term accumulation.
//
// A five-term dot product mixing an f32 accumulator (terms down to
// 2^-149) with exact operand products (bf16/tf32 products reach 2^256)
// spans far more than the 53 bits of an f64: summing in f64 and then
// rounding to f32 double-rounds. The superaccumulator below holds the sum
// in 768-bit two's-complement fixed point (bit 0 = 2^-448) so the final
// f32 rounding is the *only* rounding — exactly the single-rounding
// semantics the fused hardware dot product implements.
// ---------------------------------------------------------------------

const ACC_LIMBS: usize = 12;
const ACC_EXP_LO: i32 = -448;

/// 768-bit two's-complement fixed-point accumulator (little-endian
/// limbs, bit 0 weighs `2^-448`).
struct ExactAcc {
    limbs: [u64; ACC_LIMBS],
}

impl ExactAcc {
    fn new() -> Self {
        Self {
            limbs: [0; ACC_LIMBS],
        }
    }

    /// Add a finite `f64` term exactly.
    fn add(&mut self, t: f64) {
        if t == 0.0 {
            return;
        }
        let bits = t.to_bits();
        let neg = bits >> 63 == 1;
        let raw_e = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        let (man, e) = if raw_e == 0 {
            (frac, -1074)
        } else {
            (frac | (1 << 52), raw_e - 1075)
        };
        // The formats modeled keep every term comfortably inside the
        // accumulator's range (lowest mantissa bit ≥ 2^-350, magnitude
        // ≤ ~2^260 with sign-bit headroom to 2^319).
        debug_assert!(e >= ACC_EXP_LO, "term below accumulator range: {t}");
        debug_assert!(e + 53 < ACC_EXP_LO + (ACC_LIMBS as i32) * 64 - 8);
        let offset = (e - ACC_EXP_LO) as usize;
        let (limb, sh) = (offset / 64, offset % 64);
        let lo = man << sh;
        let hi = if sh == 0 { 0 } else { man >> (64 - sh) };
        if neg {
            self.sub_at(limb, lo, hi);
        } else {
            self.add_at(limb, lo, hi);
        }
    }

    fn add_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (s, mut carry) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = s;
        let mut extra = hi;
        let mut i = limb + 1;
        while i < ACC_LIMBS && (extra != 0 || carry) {
            let (s1, c1) = self.limbs[i].overflowing_add(extra);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            self.limbs[i] = s2;
            carry = c1 || c2;
            extra = 0;
            i += 1;
        }
    }

    fn sub_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let (s, mut borrow) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = s;
        let mut extra = hi;
        let mut i = limb + 1;
        while i < ACC_LIMBS && (extra != 0 || borrow) {
            let (s1, b1) = self.limbs[i].overflowing_sub(extra);
            let (s2, b2) = s1.overflowing_sub(borrow as u64);
            self.limbs[i] = s2;
            borrow = b1 || b2;
            extra = 0;
            i += 1;
        }
    }

    fn bit(mag: &[u64; ACC_LIMBS], i: usize) -> bool {
        (mag[i / 64] >> (i % 64)) & 1 == 1
    }

    fn any_bits_below(mag: &[u64; ACC_LIMBS], n: usize) -> bool {
        let (limb, sh) = (n / 64, n % 64);
        if mag[..limb].iter().any(|&l| l != 0) {
            return true;
        }
        sh != 0 && (mag[limb] & ((1u64 << sh) - 1)) != 0
    }

    /// Bits `lo..=hi` of the magnitude as an integer (`hi - lo < 63`).
    fn extract(mag: &[u64; ACC_LIMBS], lo: usize, hi: usize) -> u64 {
        let (limb, sh) = (lo / 64, lo % 64);
        let mut v = mag[limb] >> sh;
        if sh != 0 && limb + 1 < ACC_LIMBS {
            v |= mag[limb + 1] << (64 - sh);
        }
        v & ((1u64 << (hi - lo + 1)) - 1)
    }

    /// Round the exact sum to `f32` — the single rounding of the fused
    /// dot product. Overflow: RN → ±inf, RZ → ±`f32::MAX`.
    fn round(&self, mode: Round) -> f32 {
        let negative = self.limbs[ACC_LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            let mut carry = true;
            for l in mag.iter_mut() {
                *l = !*l;
                if carry {
                    let (s, c) = l.overflowing_add(1);
                    *l = s;
                    carry = c;
                }
            }
        }
        let hb = match (0..ACC_LIMBS).rev().find(|&i| mag[i] != 0) {
            None => return 0.0,
            Some(i) => i * 64 + 63 - mag[i].leading_zeros() as usize,
        };
        let e = hb as i32 + ACC_EXP_LO;
        // f32 ulp exponent at this magnitude (gradual underflow below
        // 2^-126: quantum pinned at 2^-149).
        let quantum = (e - 23).max(-149);
        let shift = (quantum - ACC_EXP_LO) as usize; // always ≥ 299 > 0
        let mut mant = if hb >= shift {
            Self::extract(&mag, shift, hb)
        } else {
            0
        };
        let guard = Self::bit(&mag, shift - 1);
        let sticky = Self::any_bits_below(&mag, shift - 1);
        let mut quantum = quantum;
        if mode == Round::Nearest && guard && (sticky || mant & 1 == 1) {
            mant += 1;
        }
        if mant == 1 << 24 {
            mant >>= 1;
            quantum += 1;
        }
        let val = mant as f64 * pow2(quantum); // exact
        let r = if val > f32::MAX as f64 {
            match mode {
                Round::Nearest => f32::INFINITY,
                Round::Zero => f32::MAX,
            }
        } else {
            val as f32 // exact: val is an f32-representable value
        };
        if negative {
            -r
        } else {
            r
        }
    }
}

/// Sum `terms` exactly and round **once** to `f32` in direction `mode` —
/// the semantics of a hardware fused dot product. Terms must be exact
/// `f64` values (true for f32 accumulators and all operand products of
/// the formats modeled here). Special values follow IEEE addition: any
/// NaN → NaN, opposing infinities → NaN, an infinity dominates, and an
/// exactly-zero sum of zeros keeps the IEEE sign convention.
pub fn exact_sum_round_f32(terms: &[f64], mode: Round) -> f32 {
    if terms.iter().any(|t| t.is_nan()) {
        return f32::NAN;
    }
    let pos_inf = terms.contains(&f64::INFINITY);
    let neg_inf = terms.contains(&f64::NEG_INFINITY);
    match (pos_inf, neg_inf) {
        (true, true) => return f32::NAN,
        (true, false) => return f32::INFINITY,
        (false, true) => return f32::NEG_INFINITY,
        (false, false) => {}
    }
    if terms.iter().all(|&t| t == 0.0) {
        // Sum of signed zeros: -0 only when every addend is -0 (the
        // IEEE rule for RN and RZ alike); f64 addition reproduces it.
        let s: f64 = terms.iter().sum();
        return s as f32;
    }
    let mut acc = ExactAcc::new();
    for &t in terms {
        acc.add(t);
    }
    acc.round(mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_is_exact_at_boundaries() {
        assert_eq!(pow2(0), 1.0);
        assert_eq!(pow2(-1074), f64::from_bits(1));
        assert_eq!(pow2(1023), 2f64.powi(1023));
        assert_eq!(pow2(-149), 2f64.powi(-149));
    }

    #[test]
    fn ilogb_handles_subnormals() {
        assert_eq!(ilogb(1.0), 0);
        assert_eq!(ilogb(1.5), 0);
        assert_eq!(ilogb(2.0), 1);
        assert_eq!(ilogb(0.75), -1);
        assert_eq!(ilogb(f64::from_bits(1)), -1074);
        assert_eq!(ilogb(pow2(-1050)), -1050);
    }

    #[test]
    fn f16_known_encodings() {
        assert_eq!(F16::from_f64_rn(1.0).to_bits(), 0x3c00);
        assert_eq!(F16::from_f64_rn(-2.0).to_bits(), 0xc000);
        assert_eq!(F16::from_f64_rn(65504.0).to_bits(), 0x7bff);
        // 1 + 2^-10 is the smallest f16 above 1.
        assert_eq!(F16::from_f64_rn(1.0 + 2f64.powi(-10)).to_bits(), 0x3c01);
        // Smallest subnormal 2^-24.
        assert_eq!(F16::from_f64_rn(2f64.powi(-24)).to_bits(), 0x0001);
        // Half the smallest subnormal ties to even zero under RN and
        // truncates to zero under RZ.
        assert_eq!(F16::from_f64_rn(2f64.powi(-25)).to_bits(), 0x0000);
        assert_eq!(F16::from_f64_rz(2f64.powi(-25)).to_bits(), 0x0000);
        // Overflow: RN → inf, RZ → max finite.
        assert_eq!(F16::from_f64_rn(65520.0).to_bits(), 0x7c00);
        assert_eq!(F16::from_f64_rz(65520.0).to_bits(), 0x7bff);
        assert_eq!(F16::from_f64_rn(f64::NAN).to_bits(), 0x7e00);
        assert_eq!(F16::from_f64_rn(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn f16_roundtrips_every_bit_pattern() {
        for bits in 0..=u16::MAX {
            let v = F16::from_bits(bits).to_f64();
            if v.is_nan() {
                assert!(F16::from_f64_rn(v).to_f64().is_nan());
            } else {
                assert_eq!(
                    F16::from_f64_rn(v).to_bits(),
                    bits,
                    "f16 bits {bits:#06x} (value {v:e}) did not roundtrip"
                );
            }
        }
    }

    #[test]
    fn bf16_roundtrips_every_bit_pattern() {
        for bits in 0..=u16::MAX {
            let v = Bf16::from_bits(bits).to_f64();
            if v.is_nan() {
                assert!(Bf16::from_f64_rn(v).to_f64().is_nan());
            } else {
                assert_eq!(
                    Bf16::from_f64_rn(v).to_bits(),
                    bits,
                    "bf16 bits {bits:#06x} (value {v:e}) did not roundtrip"
                );
            }
        }
    }

    #[test]
    fn bf16_truncation_vs_nearest() {
        // 1 + 2^-7 is the bf16 ulp step at 1; 1 + 3·2^-9 is 0.75 ulp up.
        let v = 1.0 + 3.0 * 2f64.powi(-9);
        assert_eq!(Bf16::from_f64_rn(v).to_f64(), 1.0 + 2f64.powi(-7));
        assert_eq!(Bf16::from_f64_rz(v).to_f64(), 1.0);
    }

    #[test]
    fn tf32_keeps_eleven_significand_bits() {
        // 1 + 2^-10 survives; 1 + 2^-11 ties to even (1.0).
        assert_eq!(
            Tf32::from_f64_rn(1.0 + 2f64.powi(-10)).to_f64(),
            1.0 + 2f64.powi(-10)
        );
        assert_eq!(Tf32::from_f64_rn(1.0 + 2f64.powi(-11)).to_f64(), 1.0);
        assert_eq!(Tf32::from_f64_rz(1.0 + 2f64.powi(-11)).to_f64(), 1.0);
        // Low 13 fraction bits of the f32 pattern are always zero.
        let mut g = crate::rng::LcgF64::new(7);
        for _ in 0..1000 {
            let t = Tf32::from_f64_rn(g.next_f64());
            assert_eq!(t.to_bits() & 0x1fff, 0);
            // Idempotent: a tf32 value re-quantizes to itself.
            assert_eq!(Tf32::from_f64_rn(t.to_f64()).to_bits(), t.to_bits());
        }
    }

    #[test]
    fn precision_labels_parse() {
        for p in Precision::ALL {
            assert_eq!(Precision::parse(p.label()), Some(p));
        }
        assert_eq!(Precision::parse("fp16"), Some(Precision::F16));
        assert_eq!(Precision::parse("half"), Some(Precision::F16));
        assert_eq!(Precision::parse("nope"), None);
    }

    /// Independent oracle: for term sets whose exact sum is representable
    /// in f64 (small integer multiples of one quantum), f64 addition is
    /// exact and `round_to_format` to the f32 parameters gives the
    /// correctly-rounded answer through entirely separate code.
    #[test]
    fn superaccumulator_matches_independent_small_oracle() {
        let mut g = crate::rng::SplitMix64::new(0x5ca1ab1e);
        for _ in 0..2000 {
            let n = 2 + (g.next_u64() % 4) as usize;
            let terms: Vec<f64> = (0..n)
                .map(|_| {
                    let m = (g.next_u64() % 4096) as i64 - 2048; // |m| ≤ 2^11
                    let e = (g.next_u64() % 40) as i32 - 30;
                    m as f64 * pow2(e)
                })
                .collect();
            let exact: f64 = terms.iter().sum(); // ≤ 53 significant bits: exact
            for mode in [Round::Nearest, Round::Zero] {
                let want = round_to_format(exact, 24, -126, 127, mode) as f32;
                let got = exact_sum_round_f32(&terms, mode);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "terms {terms:?} mode {mode:?}: superacc {got:e} != oracle {want:e}"
                );
            }
        }
    }

    #[test]
    fn superaccumulator_survives_catastrophic_cancellation() {
        // f64-naive summation loses the small term; the exact path keeps it.
        let t = [2f64.powi(100), 2f64.powi(-100), -(2f64.powi(100))];
        assert_eq!(exact_sum_round_f32(&t, Round::Nearest), 2f32.powi(-100));
        assert_eq!(exact_sum_round_f32(&t, Round::Zero), 2f32.powi(-100));
        // Exact cancellation to zero is +0 under both modes.
        let z = exact_sum_round_f32(&[1.5, -1.5], Round::Zero);
        assert_eq!(z.to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn superaccumulator_subnormal_results_are_exact() {
        let v = 2f64.powi(-140); // f32 subnormal
        assert_eq!(exact_sum_round_f32(&[v], Round::Nearest), pow2(-140) as f32);
        // 2^-140 + 2^-160: RZ truncates the tail, RN rounds to nearest
        // multiple of 2^-149.
        let t = [2f64.powi(-140), 2f64.powi(-160)];
        assert_eq!(exact_sum_round_f32(&t, Round::Zero), pow2(-140) as f32);
        assert_eq!(exact_sum_round_f32(&t, Round::Nearest), pow2(-140) as f32);
        // Below half the smallest subnormal: rounds to zero.
        assert_eq!(exact_sum_round_f32(&[2f64.powi(-151)], Round::Nearest), 0.0);
        assert_eq!(
            exact_sum_round_f32(&[3.0 * 2f64.powi(-151)], Round::Nearest),
            pow2(-149) as f32
        );
        assert_eq!(
            exact_sum_round_f32(&[3.0 * 2f64.powi(-151)], Round::Zero),
            0.0
        );
    }

    #[test]
    fn superaccumulator_overflow_semantics() {
        let t = [3.0e38, 1.0e38];
        assert_eq!(exact_sum_round_f32(&t, Round::Nearest), f32::INFINITY);
        assert_eq!(exact_sum_round_f32(&t, Round::Zero), f32::MAX);
        let t = [-3.0e38, -1.0e38];
        assert_eq!(exact_sum_round_f32(&t, Round::Nearest), f32::NEG_INFINITY);
        assert_eq!(exact_sum_round_f32(&t, Round::Zero), -f32::MAX);
    }

    #[test]
    fn superaccumulator_special_values() {
        assert!(exact_sum_round_f32(&[f64::NAN, 1.0], Round::Nearest).is_nan());
        assert!(exact_sum_round_f32(&[f64::INFINITY, f64::NEG_INFINITY], Round::Nearest).is_nan());
        assert_eq!(
            exact_sum_round_f32(&[f64::INFINITY, -1e300], Round::Zero),
            f32::INFINITY
        );
        // Signed-zero rules.
        assert_eq!(
            exact_sum_round_f32(&[0.0, -0.0], Round::Zero).to_bits(),
            0.0f32.to_bits()
        );
        assert_eq!(
            exact_sum_round_f32(&[-0.0, -0.0], Round::Nearest).to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn volta_step_truncates_where_ampere_rounds() {
        // c = 1, one product 5·2^-26 (5/8 of the f32 ulp at 1): RZ keeps
        // 1.0, the fused RN dot rounds up to 1 + 2^-23.
        let prods = [5.0 * 2f64.powi(-26), 0.0, 0.0, 0.0];
        assert_eq!(MmaGen::Volta.dot4_f32(1.0, &prods), 1.0);
        assert_eq!(MmaGen::Ampere.dot4_f32(1.0, &prods), 1.0 + 2f32.powi(-23));
    }

    #[test]
    fn volta_flushes_subnormal_steps_ampere_preserves() {
        let prods = [2f64.powi(-140), 0.0, 0.0, 0.0];
        assert_eq!(MmaGen::Volta.dot4_f32(0.0, &prods), 0.0);
        assert_eq!(MmaGen::Ampere.dot4_f32(0.0, &prods), pow2(-140) as f32);
    }

    #[test]
    fn ampere_fuses_ties_that_serial_rounding_loses() {
        // Exact sum 2^24 + 4 is representable; serial RN would stall at
        // 2^24 after the first tie (2^24 + 1 → 2^24).
        let prods = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(
            MmaGen::Ampere.dot4_f32(2f32.powi(24), &prods),
            2f32.powi(24) + 4.0
        );
        // Volta truncates every step: each +1 is dropped entirely.
        assert_eq!(MmaGen::Volta.dot4_f32(2f32.powi(24), &prods), 2f32.powi(24));
    }
}
