//! Warp-level fragment layouts for the MMA instructions the suite uses.
//!
//! A warp of 32 threads collectively owns the `A`, `B` and `C`/`D` matrices
//! of an MMA instruction. These functions reproduce the PTX-documented
//! lane-to-element mappings so that kernels (and their CC replacements,
//! which must preserve "the same thread responsibilities and data layouts"
//! per Section 5.2 of the paper) can be written against the real layout.
//!
//! ## FP64 `mma.m8n8k4`
//!
//! * `A` is 8×4 (row major): lane `t` holds `A[t / 4][t % 4]`.
//! * `B` is 4×8 (col major): lane `t` holds `B[t % 4][t / 4]`.
//! * `C`/`D` are 8×8: lane `t` holds the two elements
//!   `C[t / 4][2 * (t % 4)]` and `C[t / 4][2 * (t % 4) + 1]`.
//!
//! ## Single-bit `mma.m8n8k128`
//!
//! * `A` is 8×128 bits: lane `t` holds the 32-bit chunk
//!   `A[t / 4][32 * (t % 4) .. 32 * (t % 4) + 32]`.
//! * `B` is 128×8 bits, column major, chunked the same way.
//! * `C`/`D` are 8×8 `u32` with the FP64 accumulator layout above.

use crate::WARP_SIZE;

/// Row and column of the single FP64 `A`-fragment element held by `lane`.
#[inline]
pub fn a_f64_coords(lane: usize) -> (usize, usize) {
    debug_assert!(lane < WARP_SIZE);
    (lane / 4, lane % 4)
}

/// Row and column of the single FP64 `B`-fragment element held by `lane`.
#[inline]
pub fn b_f64_coords(lane: usize) -> (usize, usize) {
    debug_assert!(lane < WARP_SIZE);
    (lane % 4, lane / 4)
}

/// Rows and columns of the two FP64 accumulator elements held by `lane`.
#[inline]
pub fn c_f64_coords(lane: usize) -> [(usize, usize); 2] {
    debug_assert!(lane < WARP_SIZE);
    let row = lane / 4;
    let col = 2 * (lane % 4);
    [(row, col), (row, col + 1)]
}

/// Pack a row-major 8×4 `A` matrix into its warp fragment
/// (`frag[lane]` = the element lane `lane` owns).
pub fn pack_a_f64(a: &[f64; 32]) -> [f64; 32] {
    let mut frag = [0.0; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        let (r, c) = a_f64_coords(lane);
        *slot = a[r * 4 + c];
    }
    frag
}

/// Pack a row-major 4×8 `B` matrix into its warp fragment.
pub fn pack_b_f64(b: &[f64; 32]) -> [f64; 32] {
    let mut frag = [0.0; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        let (r, c) = b_f64_coords(lane);
        *slot = b[r * 8 + c];
    }
    frag
}

/// Pack a row-major 8×8 accumulator into its warp fragment
/// (two elements per lane).
pub fn pack_c_f64(c: &[f64; 64]) -> [[f64; 2]; 32] {
    let mut frag = [[0.0; 2]; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        let [(r0, c0), (r1, c1)] = c_f64_coords(lane);
        slot[0] = c[r0 * 8 + c0];
        slot[1] = c[r1 * 8 + c1];
    }
    frag
}

/// Unpack an accumulator fragment back into a row-major 8×8 matrix.
pub fn unpack_c_f64(frag: &[[f64; 2]; 32]) -> [f64; 64] {
    let mut c = [0.0; 64];
    for (lane, slot) in frag.iter().enumerate() {
        let [(r0, c0), (r1, c1)] = c_f64_coords(lane);
        c[r0 * 8 + c0] = slot[0];
        c[r1 * 8 + c1] = slot[1];
    }
    c
}

/// 32-bit chunk index (row, chunk-of-row) of the bit-`A` fragment held by
/// `lane` for `mma.m8n8k128.b1`.
#[inline]
pub fn a_b1_coords(lane: usize) -> (usize, usize) {
    debug_assert!(lane < WARP_SIZE);
    (lane / 4, lane % 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn a_fragment_covers_all_elements_once() {
        let coords: HashSet<_> = (0..WARP_SIZE).map(a_f64_coords).collect();
        assert_eq!(coords.len(), 32);
        for (r, c) in coords {
            assert!(r < 8 && c < 4);
        }
    }

    #[test]
    fn b_fragment_covers_all_elements_once() {
        let coords: HashSet<_> = (0..WARP_SIZE).map(b_f64_coords).collect();
        assert_eq!(coords.len(), 32);
        for (r, c) in coords {
            assert!(r < 4 && c < 8);
        }
    }

    #[test]
    fn c_fragment_covers_all_64_elements_once() {
        let mut seen = HashSet::new();
        for lane in 0..WARP_SIZE {
            for rc in c_f64_coords(lane) {
                assert!(seen.insert(rc), "duplicate accumulator element {rc:?}");
                assert!(rc.0 < 8 && rc.1 < 8);
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn c_lane_elements_are_adjacent_columns() {
        for lane in 0..WARP_SIZE {
            let [(r0, c0), (r1, c1)] = c_f64_coords(lane);
            assert_eq!(r0, r1);
            assert_eq!(c1, c0 + 1);
            assert_eq!(c0 % 2, 0);
        }
    }

    #[test]
    fn pack_unpack_c_roundtrip() {
        let mut c = [0.0f64; 64];
        for (i, v) in c.iter_mut().enumerate() {
            *v = i as f64 * 0.5 - 7.0;
        }
        let frag = pack_c_f64(&c);
        let back = unpack_c_f64(&frag);
        assert_eq!(c, back);
    }

    #[test]
    fn pack_a_places_row_major_elements() {
        let mut a = [0.0f64; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f64;
        }
        let frag = pack_a_f64(&a);
        // lane 5 owns A[1][1] = element index 5 in row-major 8x4.
        assert_eq!(frag[5], 5.0);
        // lane 31 owns A[7][3] = index 31.
        assert_eq!(frag[31], 31.0);
    }

    #[test]
    fn pack_b_places_col_major_elements() {
        let mut b = [0.0f64; 32];
        for (i, v) in b.iter_mut().enumerate() {
            *v = i as f64;
        }
        let frag = pack_b_f64(&b);
        // lane 5 owns B[1][1] = row-major index 1*8+1 = 9.
        assert_eq!(frag[5], 9.0);
        // lane 30 owns B[2][7] = 2*8+7 = 23.
        assert_eq!(frag[30], 23.0);
    }
}
