//! Warp-level fragment layouts for the MMA instructions the suite uses.
//!
//! A warp of 32 threads collectively owns the `A`, `B` and `C`/`D` matrices
//! of an MMA instruction. These functions reproduce the PTX-documented
//! lane-to-element mappings so that kernels (and their CC replacements,
//! which must preserve "the same thread responsibilities and data layouts"
//! per Section 5.2 of the paper) can be written against the real layout.
//!
//! ## FP64 `mma.m8n8k4`
//!
//! * `A` is 8×4 (row major): lane `t` holds `A[t / 4][t % 4]`.
//! * `B` is 4×8 (col major): lane `t` holds `B[t % 4][t / 4]`.
//! * `C`/`D` are 8×8: lane `t` holds the two elements
//!   `C[t / 4][2 * (t % 4)]` and `C[t / 4][2 * (t % 4) + 1]`.
//!
//! ## Single-bit `mma.m8n8k128`
//!
//! * `A` is 8×128 bits: lane `t` holds the 32-bit chunk
//!   `A[t / 4][32 * (t % 4) .. 32 * (t % 4) + 32]`.
//! * `B` is 128×8 bits, column major, chunked the same way.
//! * `C`/`D` are 8×8 `u32` with the FP64 accumulator layout above.
//!
//! ## Mixed-precision `mma.m16n8k16` (f16 / bf16) and `mma.m16n8k8` (tf32)
//!
//! PTX groups the warp into eight *groups* of four lanes
//! (`groupID = lane / 4`, `tid = lane % 4`). For `m16n8k16`:
//!
//! * `A` is 16×16: lane holds eight elements at rows `groupID` /
//!   `groupID + 8` and columns `2·tid`, `2·tid + 1`, `2·tid + 8`,
//!   `2·tid + 9` ([`a_m16n8k16_coords`]).
//! * `B` is 16×8: four elements at rows `2·tid`, `2·tid + 1`,
//!   `2·tid + 8`, `2·tid + 9`, column `groupID` ([`b_m16n8k16_coords`]).
//! * `C`/`D` are 16×8 `f32`: four elements at rows `groupID`,
//!   `groupID + 8` and columns `2·tid`, `2·tid + 1`
//!   ([`c_m16n8k16_coords`]).
//!
//! The TF32 `m16n8k8` shape halves the `k` extent: `A` is 16×8 with four
//! elements per lane ([`a_m16n8k8_coords`]), `B` is 8×8 with two
//! ([`b_m16n8k8_coords`]), and the accumulator layout is identical to
//! `m16n8k16`.

use crate::WARP_SIZE;

/// Row and column of the single FP64 `A`-fragment element held by `lane`.
#[inline]
pub fn a_f64_coords(lane: usize) -> (usize, usize) {
    debug_assert!(lane < WARP_SIZE);
    (lane / 4, lane % 4)
}

/// Row and column of the single FP64 `B`-fragment element held by `lane`.
#[inline]
pub fn b_f64_coords(lane: usize) -> (usize, usize) {
    debug_assert!(lane < WARP_SIZE);
    (lane % 4, lane / 4)
}

/// Rows and columns of the two FP64 accumulator elements held by `lane`.
#[inline]
pub fn c_f64_coords(lane: usize) -> [(usize, usize); 2] {
    debug_assert!(lane < WARP_SIZE);
    let row = lane / 4;
    let col = 2 * (lane % 4);
    [(row, col), (row, col + 1)]
}

/// Pack a row-major 8×4 `A` matrix into its warp fragment
/// (`frag[lane]` = the element lane `lane` owns).
pub fn pack_a_f64(a: &[f64; 32]) -> [f64; 32] {
    let mut frag = [0.0; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        let (r, c) = a_f64_coords(lane);
        *slot = a[r * 4 + c];
    }
    frag
}

/// Pack a row-major 4×8 `B` matrix into its warp fragment.
pub fn pack_b_f64(b: &[f64; 32]) -> [f64; 32] {
    let mut frag = [0.0; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        let (r, c) = b_f64_coords(lane);
        *slot = b[r * 8 + c];
    }
    frag
}

/// Pack a row-major 8×8 accumulator into its warp fragment
/// (two elements per lane).
pub fn pack_c_f64(c: &[f64; 64]) -> [[f64; 2]; 32] {
    let mut frag = [[0.0; 2]; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        let [(r0, c0), (r1, c1)] = c_f64_coords(lane);
        slot[0] = c[r0 * 8 + c0];
        slot[1] = c[r1 * 8 + c1];
    }
    frag
}

/// Unpack an accumulator fragment back into a row-major 8×8 matrix.
pub fn unpack_c_f64(frag: &[[f64; 2]; 32]) -> [f64; 64] {
    let mut c = [0.0; 64];
    for (lane, slot) in frag.iter().enumerate() {
        let [(r0, c0), (r1, c1)] = c_f64_coords(lane);
        c[r0 * 8 + c0] = slot[0];
        c[r1 * 8 + c1] = slot[1];
    }
    c
}

/// 32-bit chunk index (row, chunk-of-row) of the bit-`A` fragment held by
/// `lane` for `mma.m8n8k128.b1`.
#[inline]
pub fn a_b1_coords(lane: usize) -> (usize, usize) {
    debug_assert!(lane < WARP_SIZE);
    (lane / 4, lane % 4)
}

/// Unpack an `A` fragment back into the row-major 8×4 matrix
/// (inverse of [`pack_a_f64`]).
pub fn unpack_a_f64(frag: &[f64; 32]) -> [f64; 32] {
    let mut a = [0.0; 32];
    for (lane, &v) in frag.iter().enumerate() {
        let (r, c) = a_f64_coords(lane);
        a[r * 4 + c] = v;
    }
    a
}

/// Unpack a `B` fragment back into the row-major 4×8 matrix
/// (inverse of [`pack_b_f64`]).
pub fn unpack_b_f64(frag: &[f64; 32]) -> [f64; 32] {
    let mut b = [0.0; 32];
    for (lane, &v) in frag.iter().enumerate() {
        let (r, c) = b_f64_coords(lane);
        b[r * 8 + c] = v;
    }
    b
}

/// Rows and columns of the eight `A`-fragment elements (16×16 operand)
/// held by `lane` for `mma.m16n8k16` (PTX register order `a0..a7`).
#[inline]
pub fn a_m16n8k16_coords(lane: usize) -> [(usize, usize); 8] {
    debug_assert!(lane < WARP_SIZE);
    let (g, t) = (lane / 4, lane % 4);
    [
        (g, 2 * t),
        (g, 2 * t + 1),
        (g + 8, 2 * t),
        (g + 8, 2 * t + 1),
        (g, 2 * t + 8),
        (g, 2 * t + 9),
        (g + 8, 2 * t + 8),
        (g + 8, 2 * t + 9),
    ]
}

/// Rows and columns of the four `B`-fragment elements (16×8 operand)
/// held by `lane` for `mma.m16n8k16` (PTX register order `b0..b3`).
#[inline]
pub fn b_m16n8k16_coords(lane: usize) -> [(usize, usize); 4] {
    debug_assert!(lane < WARP_SIZE);
    let (g, t) = (lane / 4, lane % 4);
    [(2 * t, g), (2 * t + 1, g), (2 * t + 8, g), (2 * t + 9, g)]
}

/// Rows and columns of the four `f32` accumulator elements (16×8) held
/// by `lane` for `mma.m16n8k16` and `mma.m16n8k8` (the layouts match).
#[inline]
pub fn c_m16n8k16_coords(lane: usize) -> [(usize, usize); 4] {
    debug_assert!(lane < WARP_SIZE);
    let (g, t) = (lane / 4, lane % 4);
    [
        (g, 2 * t),
        (g, 2 * t + 1),
        (g + 8, 2 * t),
        (g + 8, 2 * t + 1),
    ]
}

/// Rows and columns of the four `A`-fragment elements (16×8 operand)
/// held by `lane` for the TF32 `mma.m16n8k8`.
#[inline]
pub fn a_m16n8k8_coords(lane: usize) -> [(usize, usize); 4] {
    debug_assert!(lane < WARP_SIZE);
    let (g, t) = (lane / 4, lane % 4);
    [(g, t), (g + 8, t), (g, t + 4), (g + 8, t + 4)]
}

/// Rows and columns of the two `B`-fragment elements (8×8 operand) held
/// by `lane` for the TF32 `mma.m16n8k8`.
#[inline]
pub fn b_m16n8k8_coords(lane: usize) -> [(usize, usize); 2] {
    debug_assert!(lane < WARP_SIZE);
    let (g, t) = (lane / 4, lane % 4);
    [(t, g), (t + 4, g)]
}

/// Pack a row-major `ROWS×COLS` matrix into per-lane fragments given the
/// lane-coordinate mapping — shared machinery of every mixed-precision
/// pack function. `E` elements per lane over 32 lanes must tile the
/// matrix exactly.
fn pack_by_coords<T: Copy, const E: usize, const N: usize>(
    m: &[T; N],
    cols: usize,
    coords: impl Fn(usize) -> [(usize, usize); E],
) -> [[T; E]; 32] {
    debug_assert_eq!(E * WARP_SIZE, N);
    let mut frag = [[m[0]; E]; 32];
    for (lane, slot) in frag.iter_mut().enumerate() {
        for (i, (r, c)) in coords(lane).into_iter().enumerate() {
            slot[i] = m[r * cols + c];
        }
    }
    frag
}

/// Inverse of [`pack_by_coords`].
fn unpack_by_coords<T: Copy, const E: usize, const N: usize>(
    frag: &[[T; E]; 32],
    cols: usize,
    coords: impl Fn(usize) -> [(usize, usize); E],
) -> [T; N] {
    debug_assert_eq!(E * WARP_SIZE, N);
    let mut m = [frag[0][0]; N];
    for (lane, slot) in frag.iter().enumerate() {
        for (i, (r, c)) in coords(lane).into_iter().enumerate() {
            m[r * cols + c] = slot[i];
        }
    }
    m
}

/// Pack a row-major 16×16 `A` operand into `m16n8k16` fragments
/// (`frag[lane][i]` = PTX register `a<i>` of that lane). Generic over the
/// element type so the same layout serves f16 and bf16 operands.
pub fn pack_a_m16n8k16<T: Copy>(a: &[T; 256]) -> [[T; 8]; 32] {
    pack_by_coords(a, 16, a_m16n8k16_coords)
}

/// Unpack `m16n8k16` `A` fragments back into the row-major 16×16 matrix.
pub fn unpack_a_m16n8k16<T: Copy>(frag: &[[T; 8]; 32]) -> [T; 256] {
    unpack_by_coords(frag, 16, a_m16n8k16_coords)
}

/// Pack a row-major 16×8 `B` operand into `m16n8k16` fragments.
pub fn pack_b_m16n8k16<T: Copy>(b: &[T; 128]) -> [[T; 4]; 32] {
    pack_by_coords(b, 8, b_m16n8k16_coords)
}

/// Unpack `m16n8k16` `B` fragments back into the row-major 16×8 matrix.
pub fn unpack_b_m16n8k16<T: Copy>(frag: &[[T; 4]; 32]) -> [T; 128] {
    unpack_by_coords(frag, 8, b_m16n8k16_coords)
}

/// Pack a row-major 16×8 `f32` accumulator into `m16n8k16`/`m16n8k8`
/// fragments.
pub fn pack_c_m16n8k16(c: &[f32; 128]) -> [[f32; 4]; 32] {
    pack_by_coords(c, 8, c_m16n8k16_coords)
}

/// Unpack `m16n8k16`/`m16n8k8` accumulator fragments back into the
/// row-major 16×8 matrix.
pub fn unpack_c_m16n8k16(frag: &[[f32; 4]; 32]) -> [f32; 128] {
    unpack_by_coords(frag, 8, c_m16n8k16_coords)
}

/// Pack a row-major 16×8 TF32 `A` operand into `m16n8k8` fragments.
pub fn pack_a_m16n8k8<T: Copy>(a: &[T; 128]) -> [[T; 4]; 32] {
    pack_by_coords(a, 8, a_m16n8k8_coords)
}

/// Unpack `m16n8k8` `A` fragments back into the row-major 16×8 matrix.
pub fn unpack_a_m16n8k8<T: Copy>(frag: &[[T; 4]; 32]) -> [T; 128] {
    unpack_by_coords(frag, 8, a_m16n8k8_coords)
}

/// Pack a row-major 8×8 TF32 `B` operand into `m16n8k8` fragments.
pub fn pack_b_m16n8k8<T: Copy>(b: &[T; 64]) -> [[T; 2]; 32] {
    pack_by_coords(b, 8, b_m16n8k8_coords)
}

/// Unpack `m16n8k8` `B` fragments back into the row-major 8×8 matrix.
pub fn unpack_b_m16n8k8<T: Copy>(frag: &[[T; 2]; 32]) -> [T; 64] {
    unpack_by_coords(frag, 8, b_m16n8k8_coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn a_fragment_covers_all_elements_once() {
        let coords: HashSet<_> = (0..WARP_SIZE).map(a_f64_coords).collect();
        assert_eq!(coords.len(), 32);
        for (r, c) in coords {
            assert!(r < 8 && c < 4);
        }
    }

    #[test]
    fn b_fragment_covers_all_elements_once() {
        let coords: HashSet<_> = (0..WARP_SIZE).map(b_f64_coords).collect();
        assert_eq!(coords.len(), 32);
        for (r, c) in coords {
            assert!(r < 4 && c < 8);
        }
    }

    #[test]
    fn c_fragment_covers_all_64_elements_once() {
        let mut seen = HashSet::new();
        for lane in 0..WARP_SIZE {
            for rc in c_f64_coords(lane) {
                assert!(seen.insert(rc), "duplicate accumulator element {rc:?}");
                assert!(rc.0 < 8 && rc.1 < 8);
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn c_lane_elements_are_adjacent_columns() {
        for lane in 0..WARP_SIZE {
            let [(r0, c0), (r1, c1)] = c_f64_coords(lane);
            assert_eq!(r0, r1);
            assert_eq!(c1, c0 + 1);
            assert_eq!(c0 % 2, 0);
        }
    }

    #[test]
    fn pack_unpack_c_roundtrip() {
        let mut c = [0.0f64; 64];
        for (i, v) in c.iter_mut().enumerate() {
            *v = i as f64 * 0.5 - 7.0;
        }
        let frag = pack_c_f64(&c);
        let back = unpack_c_f64(&frag);
        assert_eq!(c, back);
    }

    #[test]
    fn pack_a_places_row_major_elements() {
        let mut a = [0.0f64; 32];
        for (i, v) in a.iter_mut().enumerate() {
            *v = i as f64;
        }
        let frag = pack_a_f64(&a);
        // lane 5 owns A[1][1] = element index 5 in row-major 8x4.
        assert_eq!(frag[5], 5.0);
        // lane 31 owns A[7][3] = index 31.
        assert_eq!(frag[31], 31.0);
    }

    /// Each mapping must enumerate every element of its matrix exactly
    /// once across the 32 lanes (lane-coordinate bijectivity).
    fn assert_bijective<const E: usize>(
        coords: impl Fn(usize) -> [(usize, usize); E],
        rows: usize,
        cols: usize,
    ) {
        let mut seen = HashSet::new();
        for lane in 0..WARP_SIZE {
            for rc in coords(lane) {
                assert!(rc.0 < rows && rc.1 < cols, "{rc:?} out of {rows}x{cols}");
                assert!(seen.insert(rc), "duplicate element {rc:?}");
            }
        }
        assert_eq!(seen.len(), rows * cols);
    }

    #[test]
    fn m16n8k16_mappings_are_bijective() {
        assert_bijective(a_m16n8k16_coords, 16, 16);
        assert_bijective(b_m16n8k16_coords, 16, 8);
        assert_bijective(c_m16n8k16_coords, 16, 8);
    }

    #[test]
    fn m16n8k8_mappings_are_bijective() {
        assert_bijective(a_m16n8k8_coords, 16, 8);
        assert_bijective(b_m16n8k8_coords, 8, 8);
    }

    #[test]
    fn m16n8k16_matches_ptx_worked_example() {
        // PTX ISA: lane 5 is group 1, tid 1 → a0 = A[1][2], a2 = A[9][2],
        // a5 = A[1][11]; b0 = B[2][1], b3 = B[11][1]; c3 = C[9][3].
        let a = a_m16n8k16_coords(5);
        assert_eq!(a[0], (1, 2));
        assert_eq!(a[2], (9, 2));
        assert_eq!(a[5], (1, 11));
        let b = b_m16n8k16_coords(5);
        assert_eq!(b[0], (2, 1));
        assert_eq!(b[3], (11, 1));
        assert_eq!(c_m16n8k16_coords(5)[3], (9, 3));
        // TF32 m16n8k8: lane 5 → a1 = A[9][1], b1 = B[5][1].
        assert_eq!(a_m16n8k8_coords(5)[1], (9, 1));
        assert_eq!(b_m16n8k8_coords(5)[1], (5, 1));
    }

    #[test]
    fn mixed_pack_unpack_roundtrip() {
        let a: [u32; 256] = std::array::from_fn(|i| i as u32);
        assert_eq!(unpack_a_m16n8k16(&pack_a_m16n8k16(&a)), a);
        let b: [u32; 128] = std::array::from_fn(|i| i as u32 + 1000);
        assert_eq!(unpack_b_m16n8k16(&pack_b_m16n8k16(&b)), b);
        let c: [f32; 128] = std::array::from_fn(|i| i as f32 - 7.5);
        assert_eq!(unpack_c_m16n8k16(&pack_c_m16n8k16(&c)), c);
        let a8: [u32; 128] = std::array::from_fn(|i| i as u32 * 3);
        assert_eq!(unpack_a_m16n8k8(&pack_a_m16n8k8(&a8)), a8);
        let b8: [u32; 64] = std::array::from_fn(|i| i as u32 ^ 0x55);
        assert_eq!(unpack_b_m16n8k8(&pack_b_m16n8k8(&b8)), b8);
    }

    #[test]
    fn f64_operand_pack_unpack_roundtrip() {
        let a: [f64; 32] = std::array::from_fn(|i| i as f64 * 1.25);
        assert_eq!(unpack_a_f64(&pack_a_f64(&a)), a);
        let b: [f64; 32] = std::array::from_fn(|i| i as f64 - 16.0);
        assert_eq!(unpack_b_f64(&pack_b_f64(&b)), b);
    }

    #[test]
    fn pack_b_places_col_major_elements() {
        let mut b = [0.0f64; 32];
        for (i, v) in b.iter_mut().enumerate() {
            *v = i as f64;
        }
        let frag = pack_b_f64(&b);
        // lane 5 owns B[1][1] = row-major index 1*8+1 = 9.
        assert_eq!(frag[5], 9.0);
        // lane 30 owns B[2][7] = 2*8+7 = 23.
        assert_eq!(frag[30], 23.0);
    }
}
