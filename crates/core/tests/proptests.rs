//! Property-based tests of the MMU emulation and core utilities.

use cubie_core::counters::{MemTraffic, MMA_F64_FLOPS};
use cubie_core::frag::{
    a_b1_coords, a_f64_coords, a_m16n8k16_coords, a_m16n8k8_coords, b_f64_coords,
    b_m16n8k16_coords, b_m16n8k8_coords, c_f64_coords, c_m16n8k16_coords, pack_a_f64,
    pack_a_m16n8k16, pack_a_m16n8k8, pack_b_f64, pack_b_m16n8k16, pack_b_m16n8k8, pack_c_f64,
    pack_c_m16n8k16, unpack_a_f64, unpack_a_m16n8k16, unpack_a_m16n8k8, unpack_b_f64,
    unpack_b_m16n8k16, unpack_b_m16n8k8, unpack_c_f64, unpack_c_m16n8k16,
};
use cubie_core::mma::{
    cc_mma_f64_8x8x8, cc_mma_f64_m8n8k4, mma_f64_8x8x8, mma_f64_m8n8k4, mma_tiled_f64,
};
use cubie_core::{ErrorStats, OpCounters};
use proptest::prelude::*;

fn finite_val() -> impl Strategy<Value = f64> {
    prop_oneof![-2.0..2.0f64, -1e6..1e6f64, Just(0.0), Just(1.0), Just(-1.0),]
}

fn arr32() -> impl Strategy<Value = [f64; 32]> {
    proptest::collection::vec(finite_val(), 32).prop_map(|v| {
        let mut a = [0.0f64; 32];
        a.copy_from_slice(&v);
        a
    })
}

fn arr64() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(finite_val(), 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MMA result matches a naive double-precision matmul closely
    /// (same operation, different rounding grouping) for arbitrary
    /// fragments.
    #[test]
    fn mma_matches_naive_matmul(a in arr32(), b in arr32(), c0 in arr64()) {
        let mut c = [0.0f64; 64];
        c.copy_from_slice(&c0);
        let mut ctr = OpCounters::new();
        mma_f64_m8n8k4(&a, &b, &mut c, &mut ctr);
        for i in 0..8 {
            for j in 0..8 {
                let mut acc = c0[i * 8 + j];
                for k in 0..4 {
                    acc += a[i * 4 + k] * b[k * 8 + j];
                }
                let scale = acc.abs().max(1.0);
                prop_assert!(
                    (c[i * 8 + j] - acc).abs() <= 1e-12 * scale,
                    "({i},{j}): {} vs {}", c[i * 8 + j], acc
                );
            }
        }
        prop_assert_eq!(ctr.mma_f64, 1);
    }

    /// CC replacement is bit-identical to the tensor-core emulation for
    /// ANY input (Observation 7's foundation).
    #[test]
    fn cc_replacement_bit_identical(a in arr32(), b in arr32(), c0 in arr64()) {
        let mut c_tc = [0.0f64; 64];
        let mut c_cc = [0.0f64; 64];
        c_tc.copy_from_slice(&c0);
        c_cc.copy_from_slice(&c0);
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f64_m8n8k4(&a, &b, &mut c_tc, &mut k1);
        cc_mma_f64_m8n8k4(&a, &b, &mut c_cc, &mut k2);
        prop_assert_eq!(c_tc, c_cc);
        prop_assert_eq!(k1.tc_flops(), k2.cc_flops());
    }

    /// Logical 8×8×8 MMA == two chained m8n8k4 == its CC form.
    #[test]
    fn logical_8x8x8_consistent(a in arr64(), b in arr64(), c0 in arr64()) {
        let mut aa = [0.0f64; 64];
        let mut bb = [0.0f64; 64];
        aa.copy_from_slice(&a);
        bb.copy_from_slice(&b);
        let mut c1 = [0.0f64; 64];
        let mut c2 = [0.0f64; 64];
        c1.copy_from_slice(&c0);
        c2.copy_from_slice(&c0);
        let mut k1 = OpCounters::new();
        let mut k2 = OpCounters::new();
        mma_f64_8x8x8(&aa, &bb, &mut c1, &mut k1);
        cc_mma_f64_8x8x8(&aa, &bb, &mut c2, &mut k2);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(k1.mma_f64, 2);
        prop_assert_eq!(k2.fma_f64, 512);
    }

    /// Fragment pack/unpack of the accumulator is lossless.
    #[test]
    fn c_fragment_roundtrip(c0 in arr64()) {
        let mut c = [0.0f64; 64];
        c.copy_from_slice(&c0);
        let frag = pack_c_f64(&c);
        prop_assert_eq!(unpack_c_f64(&frag), c);
    }

    /// A/B fragment packing permutes without loss (multisets equal).
    #[test]
    fn ab_fragments_are_permutations(a in arr32(), b in arr32()) {
        let fa = pack_a_f64(&a);
        let fb = pack_b_f64(&b);
        let mut sa: Vec<u64> = a.iter().map(|v| v.to_bits()).collect();
        let mut sfa: Vec<u64> = fa.iter().map(|v| v.to_bits()).collect();
        sa.sort_unstable();
        sfa.sort_unstable();
        prop_assert_eq!(sa, sfa);
        let mut sb: Vec<u64> = b.iter().map(|v| v.to_bits()).collect();
        let mut sfb: Vec<u64> = fb.iter().map(|v| v.to_bits()).collect();
        sb.sort_unstable();
        sfb.sort_unstable();
        prop_assert_eq!(sb, sfb);
    }

    /// Tiled MMA over arbitrary (ragged) shapes matches the naive
    /// matmul.
    #[test]
    fn tiled_mma_matches_naive(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut g = cubie_core::LcgF64::new(seed + 1);
        let a = g.vec(m * k);
        let b = g.vec(k * n);
        let mut c = vec![0.0f64; m * n];
        let mut ctr = OpCounters::new();
        mma_tiled_f64(&a, &b, &mut c, m, n, k, &mut ctr);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                prop_assert!((c[i * n + j] - acc).abs() < 1e-10);
            }
        }
        let expected = (m.div_ceil(8) * n.div_ceil(8) * k.div_ceil(4)) as u64;
        prop_assert_eq!(ctr.mma_f64, expected);
    }

    /// Counter algebra: scaled(k) == k-fold sum; flops decompose.
    #[test]
    fn counter_algebra(
        mma in 0u64..1000,
        fma in 0u64..1000,
        bytes in 0u64..100_000,
        k in 1u64..8,
    ) {
        let c = OpCounters {
            mma_f64: mma,
            fma_f64: fma,
            gmem_load: MemTraffic::strided(bytes),
            ..Default::default()
        };
        let mut acc = OpCounters::default();
        for _ in 0..k {
            acc += c;
        }
        prop_assert_eq!(acc, c.scaled(k));
        prop_assert_eq!(c.flops_f64(), mma * MMA_F64_FLOPS + 2 * fma);
    }

    /// ErrorStats merge behaves like concatenation.
    #[test]
    fn error_merge_is_concatenation(
        xs in proptest::collection::vec(-1e3..1e3f64, 1..40),
        ys in proptest::collection::vec(-1e3..1e3f64, 1..40),
    ) {
        let zx = vec![0.0; xs.len()];
        let zy = vec![0.0; ys.len()];
        let ex = ErrorStats::compare(&xs, &zx);
        let ey = ErrorStats::compare(&ys, &zy);
        let merged = ex.merge(ey);
        let mut all = xs.clone();
        all.extend(&ys);
        let zall = vec![0.0; all.len()];
        let direct = ErrorStats::compare(&all, &zall);
        prop_assert!((merged.avg - direct.avg).abs() < 1e-12);
        prop_assert_eq!(merged.max, direct.max);
        prop_assert_eq!(merged.n, direct.n);
    }

    /// The LINPACK LCG always stays inside (-2, 2) and is deterministic.
    #[test]
    fn lcg_bounded_and_deterministic(seed in 0u64..u32::MAX as u64) {
        let mut a = cubie_core::LcgF64::new(seed);
        let mut b = cubie_core::LcgF64::new(seed);
        for _ in 0..100 {
            let v = a.next_f64();
            prop_assert!(v > -2.0 && v < 2.0);
            prop_assert_eq!(v, b.next_f64());
        }
    }

    /// The f64 A/B operand fragments round-trip losslessly for arbitrary
    /// bit patterns (completing the C round-trip above: every pack in
    /// `frag` is a pure lane permutation).
    #[test]
    fn f64_operand_fragments_roundtrip(bits in proptest::collection::vec(0u64..u64::MAX, 64)) {
        let mut a = [0.0f64; 32];
        let mut b = [0.0f64; 32];
        for i in 0..32 {
            a[i] = f64::from_bits(bits[i]);
            b[i] = f64::from_bits(bits[32 + i]);
        }
        let ra = unpack_a_f64(&pack_a_f64(&a));
        let rb = unpack_b_f64(&pack_b_f64(&b));
        for i in 0..32 {
            prop_assert_eq!(ra[i].to_bits(), a[i].to_bits());
            prop_assert_eq!(rb[i].to_bits(), b[i].to_bits());
        }
    }

    /// The mixed-precision `m16n8k16` and `m16n8k8` operand fragments
    /// round-trip for arbitrary 16-bit (f16/bf16) and 32-bit (tf32)
    /// payloads — NaN encodings and subnormals included.
    #[test]
    fn mixed_operand_fragments_roundtrip(
        b16 in proptest::collection::vec((0u32..0x1_0000).prop_map(|v| v as u16), 256),
        b32 in proptest::collection::vec(0u32..u32::MAX, 128),
    ) {
        let mut a16 = [0u16; 256];
        a16.copy_from_slice(&b16);
        let mut bb16 = [0u16; 128];
        bb16.copy_from_slice(&b16[..128]);
        prop_assert_eq!(unpack_a_m16n8k16(&pack_a_m16n8k16(&a16)), a16);
        prop_assert_eq!(unpack_b_m16n8k16(&pack_b_m16n8k16(&bb16)), bb16);
        let mut a32 = [0u32; 128];
        a32.copy_from_slice(&b32);
        let mut bb32 = [0u32; 64];
        bb32.copy_from_slice(&b32[..64]);
        prop_assert_eq!(unpack_a_m16n8k8(&pack_a_m16n8k8(&a32)), a32);
        prop_assert_eq!(unpack_b_m16n8k8(&pack_b_m16n8k8(&bb32)), bb32);
    }

    /// The f32 `m16n8k16` accumulator fragment round-trips for arbitrary
    /// bit patterns.
    #[test]
    fn mixed_accumulator_fragment_roundtrips(
        bits in proptest::collection::vec(0u32..u32::MAX, 128),
    ) {
        let mut c = [0.0f32; 128];
        for (dst, &src) in c.iter_mut().zip(&bits) {
            *dst = f32::from_bits(src);
        }
        let back = unpack_c_m16n8k16(&pack_c_m16n8k16(&c));
        for (x, y) in back.iter().zip(&c) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

/// Every per-lane coordinate map in `frag` must be a bijection: across
/// the 32 lanes of a warp, each matrix position is owned by exactly one
/// (lane, slot) — the PTX ownership contract all pack/unpack pairs and
/// the strided MMA fast paths rely on.
#[test]
fn lane_coordinate_maps_are_bijective() {
    fn check(name: &str, rows: usize, cols: usize, coords: impl Fn(usize) -> Vec<(usize, usize)>) {
        let mut seen = vec![0u32; rows * cols];
        for lane in 0..32 {
            for (r, c) in coords(lane) {
                assert!(
                    r < rows && c < cols,
                    "{name}: lane {lane} -> ({r},{c}) out of range"
                );
                seen[r * cols + c] += 1;
            }
        }
        assert!(
            seen.iter().all(|&n| n == 1),
            "{name}: coordinate map is not a bijection onto {rows}x{cols}"
        );
    }
    check("a_f64 (8x4)", 8, 4, |l| vec![a_f64_coords(l)]);
    check("b_f64 (4x8)", 4, 8, |l| vec![b_f64_coords(l)]);
    check("c_f64 (8x8)", 8, 8, |l| c_f64_coords(l).to_vec());
    check("a_b1 (8x128b)", 8, 4, |l| vec![a_b1_coords(l)]);
    check("a_m16n8k16 (16x16)", 16, 16, |l| {
        a_m16n8k16_coords(l).to_vec()
    });
    check("b_m16n8k16 (16x8)", 16, 8, |l| {
        b_m16n8k16_coords(l).to_vec()
    });
    check("c_m16n8k16 (16x8)", 16, 8, |l| {
        c_m16n8k16_coords(l).to_vec()
    });
    check("a_m16n8k8 (16x8)", 16, 8, |l| a_m16n8k8_coords(l).to_vec());
    check("b_m16n8k8 (8x8)", 8, 8, |l| b_m16n8k8_coords(l).to_vec());
}
