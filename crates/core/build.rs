//! Compiler-version sniff for the AVX-512 kernel path.
//!
//! The `core::arch` `_mm512_*` intrinsics stabilized in Rust 1.89, but
//! the workspace MSRV is pinned lower (see `rust-version` in the root
//! `Cargo.toml`, verified by the CI `msrv` job). Rather than bump the
//! MSRV for one optional fast path, the AVX-512 code in `src/simd.rs`
//! compiles only under the `cubie_avx512` cfg, emitted here when the
//! building compiler is new enough; on older compilers runtime dispatch
//! tops out at AVX2 and stays bit-identical (every path is).

use std::process::Command;

fn main() {
    println!("cargo::rustc-check-cfg=cfg(cubie_avx512)");
    // Only rustc's own version can move the cfg, not source changes.
    println!("cargo::rerun-if-changed=build.rs");
    if let Some((major, minor)) = rustc_release() {
        if (major, minor) >= (1, 89) {
            println!("cargo::rustc-cfg=cubie_avx512");
        }
    }
}

/// `(major, minor)` of the compiler driving this build, from `rustc -vV`
/// (the `release:` line). `None` — and therefore no AVX-512 — when the
/// output is unparseable.
fn rustc_release() -> Option<(u32, u32)> {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let out = Command::new(rustc).arg("-vV").output().ok()?;
    let text = String::from_utf8(out.stdout).ok()?;
    let line = text.lines().find(|l| l.starts_with("release: "))?;
    // Strip channel/metadata suffixes: "1.89.0-nightly" → "1.89.0".
    let ver = line["release: ".len()..].split(['-', '+']).next()?;
    let mut parts = ver.split('.');
    Some((parts.next()?.parse().ok()?, parts.next()?.parse().ok()?))
}
