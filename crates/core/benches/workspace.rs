//! Workspace-arena microbenchmarks: checkout/restore against fresh
//! allocation for the three checkout shapes (`take`, `take_in`,
//! `take_copy`), a kernel-shaped hot loop (many short-lived scratch
//! buffers per iteration — the pattern the ten workload kernels follow),
//! and cross-thread churn through the worker pool (buffers retired on
//! the dropping thread's arena, the `par_map` escape pattern).
//!
//! Run with `cargo bench -p cubie-core --bench workspace`; pass
//! `-- workspace-hot-loop` etc. to filter to one group. Every `arena/*`
//! row has a `fresh/*` twin measuring the identical loop with reuse
//! disabled ([`workspace::set_reuse`]), so the checkout win is read
//! directly off the pair.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cubie_core::rng::LcgF64;
use cubie_core::{par, workspace};

/// Warm the current thread's arena so `arena/*` rows measure steady
/// state (pool hits), not the first-iteration miss.
fn prewarm_arena(len: usize) {
    let a = workspace::take::<f64>(len, 0.0);
    let b = workspace::take::<f64>(len, 0.0);
    drop(a);
    drop(b);
}

fn bench_checkout(c: &mut Criterion) {
    let prev = workspace::set_reuse(true);
    let mut g = c.benchmark_group("workspace-checkout");
    g.sample_size(60)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [4096usize, 65_536] {
        prewarm_arena(n);
        let mut rng = LcgF64::new(42);
        let src = rng.vec(n);
        g.bench_function(format!("arena/take/{n}"), |b| {
            b.iter(|| {
                let v = workspace::take::<f64>(n, 0.0);
                black_box(v[n - 1])
            })
        });
        g.bench_function(format!("fresh/take/{n}"), |b| {
            b.iter(|| {
                let prev = workspace::set_reuse(false);
                let v = workspace::take::<f64>(n, 0.0);
                let last = v[n - 1];
                drop(v);
                workspace::set_reuse(prev);
                black_box(last)
            })
        });
        g.bench_function(format!("arena/take_copy/{n}"), |b| {
            b.iter(|| {
                let v = workspace::take_copy(&src);
                black_box(v[n - 1])
            })
        });
        g.bench_function(format!("fresh/to_vec/{n}"), |b| {
            b.iter(|| {
                let v = src.to_vec();
                black_box(v[n - 1])
            })
        });
    }
    g.finish();
    workspace::set_reuse(prev);
}

/// One kernel-shaped iteration: a handful of short-lived scratch buffers
/// checked out, filled, partially read, and dropped — the allocation
/// profile of a single trace step in the workload kernels.
fn kernel_shaped_step(n: usize) -> f64 {
    let mut acc = 0.0;
    for pass in 0..8 {
        let mut buf = workspace::take::<f64>(n, 0.0);
        let mut tmp = workspace::take_in::<f64>(n);
        for i in 0..n {
            buf[i] = (i ^ pass) as f64;
        }
        tmp.extend(buf.iter().map(|v| v * 0.5));
        acc += buf[n - 1] + tmp[n / 2];
    }
    acc
}

fn bench_hot_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("workspace-hot-loop");
    g.sample_size(40)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 4096usize;
    for on in [true, false] {
        let label = if on { "arena" } else { "fresh" };
        g.bench_function(format!("{label}/8xtake/{n}"), |b| {
            let prev = workspace::set_reuse(on);
            b.iter(|| black_box(kernel_shaped_step(n)));
            workspace::set_reuse(prev);
        });
    }
    g.finish();
}

fn bench_pool_churn(c: &mut Criterion) {
    let prev_jobs = par::set_max_workers(4);
    cubie_core::pool::prewarm();
    let mut g = c.benchmark_group("workspace-pool-churn");
    g.sample_size(30)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let n = 4096usize;
    for on in [true, false] {
        let label = if on { "arena" } else { "fresh" };
        g.bench_function(format!("{label}/par_map16/{n}"), |b| {
            let prev = workspace::set_reuse(on);
            b.iter(|| {
                let sums = par::par_map(16, |i| {
                    let mut buf = workspace::take::<f64>(n, 0.0);
                    buf[i] = 1.0;
                    buf.iter().sum::<f64>()
                });
                black_box(sums.len())
            });
            workspace::set_reuse(prev);
        });
    }
    g.finish();
    par::set_max_workers(prev_jobs);
}

criterion_group!(
    workspace_benches,
    bench_checkout,
    bench_hot_loop,
    bench_pool_churn
);
criterion_main!(workspace_benches);
