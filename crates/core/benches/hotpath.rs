//! Hot-path microbenchmarks for the execution substrate: `par_map`
//! dispatch latency (persistent pool vs spawning scoped threads per
//! call), the tiled FP64 MMA aligned fast path vs the packing reference
//! and the ragged fallback, an end-to-end GEMM-TC-shaped composite
//! (pool dispatch × aligned MMA tiles), and simd-vs-scalar groups for
//! the three vectorized inner kernels (every compiled+supported
//! `cubie_core::simd` path on the same inputs — the scalar rows are the
//! baseline of the ≥2x dispatch-speedup target).
//!
//! Run with `cargo bench -p cubie-core`; the offline criterion stand-in
//! prints median ns/iter per case (see README, "Offline dependencies").
//! `cargo bench -p cubie-core --bench hotpath -- simd` runs only the
//! simd groups; set `CUBIE_CRITERION_JSON=<path>` to capture the
//! results as the machine-readable baseline CI uploads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use cubie_core::mma::{mma_f64_m8n8k4, mma_tiled_f64};
use cubie_core::rng::LcgF64;
use cubie_core::simd::{self, StarTap};
use cubie_core::{par, OpCounters};

/// The pre-pool `par_map`: spawn scoped threads on every call, collect
/// through a `Vec<Option<T>>` double-pass. Kept here as the dispatch
/// baseline the pool is measured against.
fn spawn_per_call_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = par::workers_for(n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let chunk = (n / (workers * 8)).max(1);
    struct Slots<T>(*mut Option<T>);
    unsafe impl<T: Send> Sync for Slots<T> {}
    let slots = Slots(out.as_mut_ptr());
    let slots = &slots;
    std::thread::scope(|s| {
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                for i in start..end {
                    unsafe { *slots.0.add(i) = Some(f(i)) };
                }
            });
        }
    });
    out.into_iter().map(|v| v.expect("slot filled")).collect()
}

fn bench_par_dispatch(c: &mut Criterion) {
    // Pin the worker cap: the dispatch comparison must actually engage
    // threads even on single-core CI boxes (cap 0 would resolve to one
    // worker there and measure two serial loops).
    let prev = par::set_max_workers(4);
    cubie_core::pool::prewarm();
    let mut g = c.benchmark_group("par_map-dispatch");
    g.sample_size(60)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [16usize, 256, 4096] {
        g.bench_function(format!("pool/n{n}"), |b| {
            b.iter(|| par::par_map(black_box(n), |i| i.wrapping_mul(2)))
        });
        g.bench_function(format!("spawn-per-call/n{n}"), |b| {
            b.iter(|| spawn_per_call_map(black_box(n), |i| i.wrapping_mul(2)))
        });
    }
    g.finish();
    par::set_max_workers(prev);
}

/// The pre-fast-path tiled MMA: zero-fill + pack every tile into scratch
/// and copy the accumulator in and out. The aligned fast path is
/// measured against this (bit-identical results, different dispatch).
fn tiled_packed_ref(
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    counters: &mut OpCounters,
) {
    let mut at = [0.0f64; 32];
    let mut bt = [0.0f64; 32];
    let mut ct = [0.0f64; 64];
    for i0 in (0..m).step_by(8) {
        for j0 in (0..n).step_by(8) {
            ct.fill(0.0);
            for (ii, row) in ct.chunks_exact_mut(8).enumerate() {
                if i0 + ii < m {
                    for (jj, v) in row.iter_mut().enumerate() {
                        if j0 + jj < n {
                            *v = c[(i0 + ii) * n + (j0 + jj)];
                        }
                    }
                }
            }
            for k0 in (0..k).step_by(4) {
                at.fill(0.0);
                bt.fill(0.0);
                for ii in 0..8usize.min(m - i0) {
                    for kk in 0..4usize.min(k - k0) {
                        at[ii * 4 + kk] = a[(i0 + ii) * k + (k0 + kk)];
                    }
                }
                for kk in 0..4usize.min(k - k0) {
                    for jj in 0..8usize.min(n - j0) {
                        bt[kk * 8 + jj] = b[(k0 + kk) * n + (j0 + jj)];
                    }
                }
                mma_f64_m8n8k4(&at, &bt, &mut ct, counters);
            }
            for ii in 0..8usize.min(m - i0) {
                for jj in 0..8usize.min(n - j0) {
                    c[(i0 + ii) * n + (j0 + jj)] = ct[ii * 8 + jj];
                }
            }
        }
    }
}

fn bench_mma_tiled(c: &mut Criterion) {
    let mut g = c.benchmark_group("mma_tiled_f64");
    g.sample_size(40)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let mut rng = LcgF64::new(42);
    let (m, n, k) = (64, 64, 64);
    let a = rng.vec(m * k);
    let b = rng.vec(k * n);
    let mut cbuf = vec![0.0f64; m * n];
    let mut ctr = OpCounters::new();
    g.bench_function("aligned/64x64x64", |bch| {
        bch.iter(|| {
            cbuf.fill(0.0);
            mma_tiled_f64(&a, &b, &mut cbuf, m, n, k, &mut ctr);
            black_box(cbuf[0])
        })
    });
    g.bench_function("packed-ref/64x64x64", |bch| {
        bch.iter(|| {
            cbuf.fill(0.0);
            tiled_packed_ref(&a, &b, &mut cbuf, m, n, k, &mut ctr);
            black_box(cbuf[0])
        })
    });
    // One element short of alignment in every dimension: the ragged
    // fallback packs and bounds-guards every tile.
    let (rm, rn, rk) = (63, 63, 63);
    let ra = rng.vec(rm * rk);
    let rb = rng.vec(rk * rn);
    let mut rc = vec![0.0f64; rm * rn];
    g.bench_function("ragged/63x63x63", |bch| {
        bch.iter(|| {
            rc.fill(0.0);
            mma_tiled_f64(&ra, &rb, &mut rc, rm, rn, rk, &mut ctr);
            black_box(rc[0])
        })
    });
    g.finish();
}

fn bench_gemm_tc_end_to_end(c: &mut Criterion) {
    let prev = par::set_max_workers(4);
    cubie_core::pool::prewarm();
    let mut g = c.benchmark_group("gemm-tc");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    // GEMM-TC shape: 512×256×256 product decomposed into 64-row bands,
    // dispatched over the pool, each band an aligned tiled MMA — the
    // same pool + aligned-MMA composition the GEMM workload's TC variant
    // exercises.
    let (m, n, k) = (512usize, 256usize, 256usize);
    let mut rng = LcgF64::new(7);
    let a = rng.vec(m * k);
    let b = rng.vec(k * n);
    g.bench_function(format!("pool+aligned/{m}x{n}x{k}"), |bch| {
        bch.iter(|| {
            let bands = par::par_map(m / 64, |bi| {
                let mut cband = vec![0.0f64; 64 * n];
                let mut ctr = OpCounters::new();
                mma_tiled_f64(
                    &a[bi * 64 * k..(bi + 1) * 64 * k],
                    &b,
                    &mut cband,
                    64,
                    n,
                    k,
                    &mut ctr,
                );
                cband
            });
            black_box(bands.len())
        })
    });
    g.finish();
    par::set_max_workers(prev);
}

/// The three vectorized inner kernels, once per supported SIMD path on
/// identical inputs. Labels follow `simd-<kernel>/<path>/<shape>` so
/// `-- simd` filters to these groups and a path's rows diff cleanly
/// against `scalar`'s.
fn bench_simd_paths(c: &mut Criterion) {
    let paths = simd::supported_paths();
    let mut rng = LcgF64::new(42);

    // Strided MMA core: a 32-tile band per iteration (the trace phase's
    // dominant op), tiles side by side in one wide row-major C.
    const TILES: usize = 32;
    let a = rng.vec(8 * 4);
    let b = rng.vec(4 * 8 * TILES);
    let mut cbuf = rng.vec(8 * 8 * TILES);
    let mut g = c.benchmark_group("simd-mma-strided");
    g.sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &p in &paths {
        g.bench_function(format!("{}/8x{}-band", p.label(), 8 * TILES), |bch| {
            bch.iter(|| {
                for t in 0..TILES {
                    simd::mma_f64_m8n8k4_strided_on(
                        p,
                        &a,
                        0,
                        4,
                        &b,
                        t * 8,
                        8 * TILES,
                        &mut cbuf,
                        t * 8,
                        8 * TILES,
                    );
                }
                black_box(cbuf[0])
            })
        });
    }
    g.finish();

    // CSR SpMV row: one long row (4096 nonzeros) with a strided column
    // pattern against a 64k-element vector.
    let nnz = 4096usize;
    let xlen = 65_536usize;
    let vals = rng.vec(nnz);
    let x = rng.vec(xlen);
    let cols: Vec<u32> = (0..nnz).map(|i| ((i * 37) % xlen) as u32).collect();
    let mut g = c.benchmark_group("simd-spmv-row");
    g.sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &p in &paths {
        g.bench_function(format!("{}/nnz{nnz}", p.label()), |bch| {
            bch.iter(|| black_box(simd::spmv_csr_row_on(p, &vals, &cols, &x)))
        });
    }
    g.finish();

    // Stencil star row: one 4096-point row with the 2D radius-1 tap
    // structure (neighbour rows + shifted center slices).
    let n = 4096usize;
    let center = rng.vec(n + 2);
    let (north, south) = (rng.vec(n), rng.vec(n));
    let mut out = vec![0.0f64; n];
    let mut g = c.benchmark_group("simd-stencil-row");
    g.sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for &p in &paths {
        g.bench_function(format!("{}/n{n}", p.label()), |bch| {
            bch.iter(|| {
                let taps = [
                    StarTap {
                        weight: 0.125,
                        a: &north,
                        b: &south,
                    },
                    StarTap {
                        weight: 0.125,
                        a: &center[0..n],
                        b: &center[2..n + 2],
                    },
                ];
                simd::star_row_on(p, 0.5, &center[1..n + 1], &taps, &mut out);
                black_box(out[0])
            })
        });
    }
    g.finish();
}

criterion_group!(
    hotpath,
    bench_par_dispatch,
    bench_mma_tiled,
    bench_gemm_tc_end_to_end,
    bench_simd_paths
);
criterion_main!(hotpath);
