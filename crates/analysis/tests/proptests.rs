//! Property-based tests of the analysis machinery (PCA invariants).

use cubie_analysis::Pca;
use proptest::prelude::*;

fn samples() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (2usize..6, 3usize..60).prop_flat_map(|(d, n)| {
        proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, d), n.max(d + 1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Components are orthonormal for any data.
    #[test]
    fn components_orthonormal(s in samples()) {
        let pca = Pca::fit(&s);
        let d = pca.components.len();
        for i in 0..d {
            for j in 0..d {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((dot - expect).abs() < 1e-8, "({i},{j}): {dot}");
            }
        }
    }

    /// Eigenvalues descend, are non-negative (up to numerics) and sum to
    /// the standardized trace (= dimension, when no feature is constant).
    #[test]
    fn eigenvalue_structure(s in samples()) {
        let pca = Pca::fit(&s);
        for w in pca.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        for &v in &pca.eigenvalues {
            prop_assert!(v > -1e-9, "negative eigenvalue {v}");
        }
        let d = pca.components.len() as f64;
        let sum: f64 = pca.eigenvalues.iter().sum();
        prop_assert!(sum <= d + 1e-6, "trace {sum} exceeds dimension {d}");
    }

    /// Explained variance is monotone in k and reaches 1 at full rank.
    #[test]
    fn explained_variance_monotone(s in samples()) {
        let pca = Pca::fit(&s);
        let d = pca.components.len();
        let mut last = 0.0;
        for k in 1..=d {
            let e = pca.explained_variance(k);
            prop_assert!(e >= last - 1e-12);
            last = e;
        }
        prop_assert!((pca.explained_variance(d) - 1.0).abs() < 1e-9);
    }

    /// Projections are invariant under feature-wise affine rescaling
    /// (standardization removes units) — up to component sign.
    #[test]
    fn projection_scale_invariant(s in samples(), scale in 0.5..100.0f64, shift in -50.0..50.0f64) {
        let rescaled: Vec<Vec<f64>> = s
            .iter()
            .map(|row| row.iter().map(|v| v * scale + shift).collect())
            .collect();
        let a = Pca::fit(&s);
        let b = Pca::fit(&rescaled);
        // Compare |projection| distances between first two samples.
        let pa: Vec<f64> = a.project(&s[0], 2).iter().zip(a.project(&s[1], 2)).map(|(x, y)| (x - y).abs()).collect();
        let pb: Vec<f64> = b.project(&rescaled[0], 2).iter().zip(b.project(&rescaled[1], 2)).map(|(x, y)| (x - y).abs()).collect();
        for (x, y) in pa.iter().zip(&pb) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }
}
