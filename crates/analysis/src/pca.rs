//! Principal component analysis from scratch: feature standardization,
//! covariance computation, and a cyclic Jacobi eigensolver for the
//! symmetric covariance matrix. Matches the paper's methodology:
//! "the data is standardized, followed by applying PCA by computing the
//! covariance matrix and extracting the two top principal components".

use serde::{Deserialize, Serialize};

/// A fitted PCA model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    /// Feature means (standardization).
    pub means: Vec<f64>,
    /// Feature standard deviations (standardization; zero-variance
    /// features get σ = 1 so they standardize to zero).
    pub stds: Vec<f64>,
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Principal components (rows, orthonormal), same order.
    pub components: Vec<Vec<f64>>,
}

impl Pca {
    /// Fit a PCA on row-major samples (`n_samples × n_features`).
    ///
    /// # Panics
    /// Panics on fewer than two samples or inconsistent feature counts.
    pub fn fit(samples: &[Vec<f64>]) -> Self {
        let n = samples.len();
        assert!(n >= 2, "PCA needs at least two samples");
        let d = samples[0].len();
        assert!(samples.iter().all(|s| s.len() == d), "ragged samples");

        let mut means = vec![0.0f64; d];
        for s in samples {
            for (m, v) in means.iter_mut().zip(s) {
                *m += v;
            }
        }
        for m in means.iter_mut() {
            *m /= n as f64;
        }
        let mut stds = vec![0.0f64; d];
        for s in samples {
            for ((sd, v), m) in stds.iter_mut().zip(s).zip(&means) {
                *sd += (v - m) * (v - m);
            }
        }
        for sd in stds.iter_mut() {
            *sd = (*sd / (n - 1) as f64).sqrt();
            if *sd < 1e-12 {
                *sd = 1.0;
            }
        }

        // Covariance of the standardized data (= correlation matrix).
        let mut cov = vec![0.0f64; d * d];
        for s in samples {
            let z: Vec<f64> = s
                .iter()
                .zip(&means)
                .zip(&stds)
                .map(|((v, m), sd)| (v - m) / sd)
                .collect();
            for i in 0..d {
                for j in i..d {
                    cov[i * d + j] += z[i] * z[j];
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                cov[i * d + j] /= (n - 1) as f64;
                cov[j * d + i] = cov[i * d + j];
            }
        }

        let (eigenvalues, components) = jacobi_eigen(&cov, d);
        Self {
            means,
            stds,
            eigenvalues,
            components,
        }
    }

    /// Project one sample onto the top `k` components.
    pub fn project(&self, sample: &[f64], k: usize) -> Vec<f64> {
        assert_eq!(sample.len(), self.means.len());
        let z: Vec<f64> = sample
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), sd)| (v - m) / sd)
            .collect();
        self.components
            .iter()
            .take(k)
            .map(|c| c.iter().zip(&z).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Project many samples onto the top `k` components.
    pub fn project_all(&self, samples: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
        samples.iter().map(|s| self.project(s, k)).collect()
    }

    /// Fraction of total variance explained by the top `k` components.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix; returns
/// (eigenvalues desc, orthonormal eigenvectors as rows).
fn jacobi_eigen(m: &[f64], d: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let mut a = m.to_vec();
    let mut v = vec![0.0f64; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for p in 0..d {
            for q in p + 1..d {
                off += a[p * d + q] * a[p * d + q];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..d {
            for q in p + 1..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/cols p and q.
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let vkp = v[k * d + p];
                    let vkq = v[k * d + q];
                    v[k * d + p] = c * vkp - s * vkq;
                    v[k * d + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&i, &j| a[j * d + j].partial_cmp(&a[i * d + i]).unwrap());
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i * d + i]).collect();
    let components: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| (0..d).map(|k| v[k * d + i]).collect())
        .collect();
    (eigenvalues, components)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_core::SplitMix64;

    fn correlated_samples(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut g = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let t = g.next_unit() * 10.0;
                let noise = g.next_unit() - 0.5;
                // Strongly correlated pair plus an independent feature.
                vec![t, 2.0 * t + 0.1 * noise, g.next_unit()]
            })
            .collect()
    }

    #[test]
    fn first_component_captures_correlated_pair() {
        let s = correlated_samples(500, 1);
        let pca = Pca::fit(&s);
        // Two correlated features → ~2/3 of standardized variance on PC1.
        assert!(
            pca.explained_variance(1) > 0.6,
            "PC1 explains {}",
            pca.explained_variance(1)
        );
        assert!(pca.explained_variance(3) > 0.999);
    }

    #[test]
    fn components_are_orthonormal() {
        let s = correlated_samples(200, 2);
        let pca = Pca::fit(&s);
        let d = pca.components.len();
        for i in 0..d {
            for j in 0..d {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({i},{j}): {dot}");
            }
        }
    }

    #[test]
    fn eigenvalues_descend_and_sum_to_dimension() {
        let s = correlated_samples(300, 3);
        let pca = Pca::fit(&s);
        for w in pca.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // Correlation matrix trace = d.
        let sum: f64 = pca.eigenvalues.iter().sum();
        assert!((sum - 3.0).abs() < 1e-9, "trace {sum}");
    }

    #[test]
    fn projection_centers_the_data() {
        let s = correlated_samples(100, 4);
        let pca = Pca::fit(&s);
        let proj = pca.project_all(&s, 2);
        let mean0: f64 = proj.iter().map(|p| p[0]).sum::<f64>() / proj.len() as f64;
        let mean1: f64 = proj.iter().map(|p| p[1]).sum::<f64>() / proj.len() as f64;
        assert!(mean0.abs() < 1e-9 && mean1.abs() < 1e-9);
    }

    #[test]
    fn constant_feature_does_not_break_fit() {
        let samples: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 7.0, (i % 5) as f64])
            .collect();
        let pca = Pca::fit(&samples);
        assert!(pca.eigenvalues.iter().all(|v| v.is_finite()));
        let p = pca.project(&samples[0], 2);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn known_diagonal_case() {
        // Two independent features with very different variances: after
        // standardization both carry equal weight.
        let mut g = SplitMix64::new(9);
        let samples: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![1000.0 * g.next_unit(), 0.001 * g.next_unit()])
            .collect();
        let pca = Pca::fit(&samples);
        assert!((pca.explained_variance(1) - 0.5).abs() < 0.1);
    }
}
