//! Profile models of representative Rodinia and SHOC kernels — the
//! comparison points of the suite-diversity study (Figure 11) and the
//! dwarf-coverage comparison (Table 7).
//!
//! The paper executes Rodinia and SHOC under Nsight Compute; here each
//! kernel is modelled as the operation-count trace its documented
//! algorithm issues (all vector-unit work — neither suite uses tensor
//! cores, which is precisely the contrast Figure 11 draws). Counts follow
//! the standard formulations: e.g. `hotspot` is a 2-D 5-point stencil
//! over a power grid, `lud` is an in-place blocked LU factorization with
//! `2n³/3` FLOPs, SHOC `Triad` moves three streams per FMA.

use cubie_core::counters::MemTraffic;
use cubie_core::OpCounters;
use cubie_sim::{KernelTrace, WorkloadTrace};

/// A named profile entry.
pub struct MiniKernel {
    /// Kernel name.
    pub name: &'static str,
    /// Berkeley dwarf (Table 7 bookkeeping).
    pub dwarf: &'static str,
    /// The launch trace.
    pub trace: WorkloadTrace,
}

fn launch(blocks: u64, threads: u32, ops: OpCounters) -> WorkloadTrace {
    WorkloadTrace::single(KernelTrace::new("mini", blocks, threads, 8192, ops, 0.0))
}

/// The Rodinia profile set (8 kernels over 5 dwarfs, matching Table 7's
/// Rodinia column: 3 dense LA, 4 structured grids, 2 unstructured grids
/// → represented by their dominant kernels —, 2 graph traversal, 1
/// dynamic programming).
pub fn rodinia() -> Vec<MiniKernel> {
    let mut v = Vec::new();
    // kmeans: distance computation, dense LA-ish; n points × k centres.
    let (n, k, d) = (1u64 << 20, 16u64, 32u64);
    v.push(MiniKernel {
        name: "rodinia-kmeans",
        dwarf: "Dense linear algebra",
        trace: launch(
            n / 256,
            256,
            OpCounters {
                fma_f64: n * k * d,
                add_f64: n * k,
                gmem_load: MemTraffic::coalesced(n * d * 8),
                l2_bytes: n * k * d * 8 / 16,
                gmem_store: MemTraffic::coalesced(n * 4),
                ..Default::default()
            },
        ),
    });
    // lud: blocked LU, 2n³/3 FLOPs.
    let n = 2048u64;
    v.push(MiniKernel {
        name: "rodinia-lud",
        dwarf: "Dense linear algebra",
        trace: launch(
            (n / 16) * (n / 16),
            256,
            OpCounters {
                fma_f64: n * n * n / 3,
                gmem_load: MemTraffic::coalesced(n * n * 8),
                l2_bytes: n * n * n / 16 * 8,
                gmem_store: MemTraffic::coalesced(n * n * 8),
                smem_bytes: n * n * 16 * 8,
                ..Default::default()
            },
        ),
    });
    // gaussian elimination.
    let n = 2048u64;
    v.push(MiniKernel {
        name: "rodinia-gaussian",
        dwarf: "Dense linear algebra",
        trace: launch(
            n / 2,
            256,
            OpCounters {
                fma_f64: n * n * n / 3,
                gmem_load: MemTraffic::strided(n * n * n / 64 * 8),
                gmem_store: MemTraffic::strided(n * n * 8),
                ..Default::default()
            },
        ),
    });
    // hotspot: 5-point power/temperature stencil.
    let g = 4096u64 * 4096;
    v.push(MiniKernel {
        name: "rodinia-hotspot",
        dwarf: "Structured grids",
        trace: launch(
            g / 2048,
            256,
            OpCounters {
                fma_f64: g * 7,
                gmem_load: MemTraffic::coalesced(2 * g * 8),
                gmem_store: MemTraffic::coalesced(g * 8),
                smem_bytes: g * 5 * 8,
                ..Default::default()
            },
        ),
    });
    // srad: speckle-reducing anisotropic diffusion (two stencil passes +
    // divisions).
    v.push(MiniKernel {
        name: "rodinia-srad",
        dwarf: "Structured grids",
        trace: launch(
            g / 2048,
            256,
            OpCounters {
                fma_f64: g * 12,
                special_f64: g,
                gmem_load: MemTraffic::coalesced(3 * g * 8),
                gmem_store: MemTraffic::coalesced(2 * g * 8),
                smem_bytes: g * 8 * 8,
                ..Default::default()
            },
        ),
    });
    // cfd: unstructured-mesh Euler solver — indirect gathers dominate.
    let cells = 1u64 << 21;
    v.push(MiniKernel {
        name: "rodinia-cfd",
        dwarf: "Unstructured grids",
        trace: launch(
            cells / 192,
            192,
            OpCounters {
                fma_f64: cells * 180,
                special_f64: cells * 2,
                gmem_load: MemTraffic::random(cells * 4 * 32) + MemTraffic::coalesced(cells * 40),
                gmem_store: MemTraffic::coalesced(cells * 40),
                int_ops: cells * 16,
                ..Default::default()
            },
        ),
    });
    // bfs (Rodinia's simple level-synchronous version).
    let (vtx, edg) = (1u64 << 21, 12u64 << 21);
    v.push(MiniKernel {
        name: "rodinia-bfs",
        dwarf: "Graph traversal",
        trace: launch(
            vtx / 256,
            256,
            OpCounters {
                int_ops: edg * 4,
                gmem_load: MemTraffic::random(edg * 4) + MemTraffic::strided(edg * 4),
                gmem_store: MemTraffic::random(vtx * 4),
                ..Default::default()
            },
        ),
    });
    // pathfinder: dynamic programming over a grid.
    let (cols, rows) = (1u64 << 20, 128u64);
    v.push(MiniKernel {
        name: "rodinia-pathfinder",
        dwarf: "Dynamic programming",
        trace: launch(
            cols / 256,
            256,
            OpCounters {
                add_f64: cols * rows,
                int_ops: cols * rows * 3,
                gmem_load: MemTraffic::coalesced(cols * rows * 4 / 8),
                gmem_store: MemTraffic::coalesced(cols * 4),
                smem_bytes: cols * rows * 4,
                ..Default::default()
            },
        ),
    });
    v
}

/// The SHOC profile set (8 kernels over 5 dwarfs, matching Table 7's
/// SHOC column: 2 dense LA, 1 spectral, 1 N-Body, 1 structured grid,
/// 3 MapReduce).
pub fn shoc() -> Vec<MiniKernel> {
    let mut v = Vec::new();
    let n = 2048u64;
    v.push(MiniKernel {
        name: "shoc-sgemm",
        dwarf: "Dense linear algebra",
        trace: launch(
            (n / 32) * (n / 32),
            256,
            OpCounters {
                fma_f64: n * n * n,
                gmem_load: MemTraffic::coalesced(2 * n * n * 8),
                l2_bytes: 2 * n * n * n / 32 * 8,
                gmem_store: MemTraffic::coalesced(n * n * 8),
                smem_bytes: n * n * n / 32 * 8,
                ..Default::default()
            },
        ),
    });
    v.push(MiniKernel {
        name: "shoc-triad",
        dwarf: "Dense linear algebra",
        trace: launch(
            1 << 14,
            256,
            OpCounters {
                fma_f64: 1 << 24,
                gmem_load: MemTraffic::coalesced(2 * (1u64 << 24) * 8),
                gmem_store: MemTraffic::coalesced((1u64 << 24) * 8),
                ..Default::default()
            },
        ),
    });
    // fft: Stockham radix-2, 5·N·log₂N.
    let n = 1u64 << 22;
    let l2n = 22u64;
    v.push(MiniKernel {
        name: "shoc-fft",
        dwarf: "Spectral methods",
        trace: launch(
            n / 512,
            128,
            OpCounters {
                mul_f64: n / 2 * l2n * 4,
                add_f64: n / 2 * l2n * 6,
                gmem_load: MemTraffic::coalesced(n * 16) + MemTraffic::strided(n * 16),
                gmem_store: MemTraffic::coalesced(n * 16),
                smem_bytes: n * 16 * l2n,
                ..Default::default()
            },
        ),
    });
    // md: Lennard-Jones pairwise forces with neighbour lists.
    let (atoms, neigh) = (1u64 << 17, 128u64);
    v.push(MiniKernel {
        name: "shoc-md",
        dwarf: "N-Body",
        trace: launch(
            atoms / 128,
            128,
            OpCounters {
                fma_f64: atoms * neigh * 23,
                special_f64: atoms * neigh,
                gmem_load: MemTraffic::random(atoms * neigh * 24)
                    + MemTraffic::coalesced(atoms * 32),
                gmem_store: MemTraffic::coalesced(atoms * 24),
                int_ops: atoms * neigh * 2,
                ..Default::default()
            },
        ),
    });
    // stencil2d: 9-point.
    let g = 4096u64 * 4096;
    v.push(MiniKernel {
        name: "shoc-stencil2d",
        dwarf: "Structured grids",
        trace: launch(
            g / 2048,
            256,
            OpCounters {
                fma_f64: g * 9,
                gmem_load: MemTraffic::coalesced(g * 8) + MemTraffic::strided(g * 2),
                gmem_store: MemTraffic::coalesced(g * 8),
                smem_bytes: g * 9 * 8,
                ..Default::default()
            },
        ),
    });
    // reduction / scan / sort: the MapReduce trio.
    let n = 1u64 << 24;
    v.push(MiniKernel {
        name: "shoc-reduction",
        dwarf: "MapReduce",
        trace: launch(
            n / 2048,
            256,
            OpCounters {
                add_f64: n,
                gmem_load: MemTraffic::coalesced(n * 8),
                gmem_store: MemTraffic::coalesced(n / 2048 * 8),
                smem_bytes: n / 8,
                ..Default::default()
            },
        ),
    });
    v.push(MiniKernel {
        name: "shoc-scan",
        dwarf: "MapReduce",
        trace: launch(
            n / 2048,
            256,
            OpCounters {
                add_f64: 2 * n,
                gmem_load: MemTraffic::coalesced(n * 8),
                gmem_store: MemTraffic::coalesced(n * 8),
                smem_bytes: n,
                ..Default::default()
            },
        ),
    });
    v.push(MiniKernel {
        name: "shoc-sort",
        dwarf: "MapReduce",
        trace: launch(
            n / 1024,
            256,
            OpCounters {
                int_ops: n * 32,
                gmem_load: MemTraffic::coalesced(4 * n * 4) + MemTraffic::random(4 * n * 4),
                gmem_store: MemTraffic::random(4 * n * 4),
                smem_bytes: n * 16,
                ..Default::default()
            },
        ),
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rodinia_covers_five_dwarfs() {
        let dwarfs: HashSet<_> = rodinia().iter().map(|k| k.dwarf).collect();
        assert_eq!(dwarfs.len(), 5, "Table 7: Rodinia covers 5 dwarfs");
    }

    #[test]
    fn shoc_covers_five_dwarfs() {
        let dwarfs: HashSet<_> = shoc().iter().map(|k| k.dwarf).collect();
        assert_eq!(dwarfs.len(), 5, "Table 7: SHOC covers 5 dwarfs");
    }

    #[test]
    fn no_mini_kernel_uses_tensor_cores() {
        for k in rodinia().into_iter().chain(shoc()) {
            let ops = k.trace.total_ops();
            assert_eq!(ops.mma_f64, 0, "{}", k.name);
            assert_eq!(ops.mma_b1, 0, "{}", k.name);
        }
    }

    #[test]
    fn traces_are_nonempty_and_finite() {
        use cubie_device::h200;
        use cubie_sim::time_workload;
        let d = h200();
        for k in rodinia().into_iter().chain(shoc()) {
            let t = time_workload(&d, &k.trace);
            assert!(t.total_s.is_finite() && t.total_s > 0.0, "{}", k.name);
        }
    }
}
