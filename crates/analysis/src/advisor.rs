//! MMU-suitability advisor — the paper's Section 4 closes by asking
//! "whether MMU accelerability can be inferred from the original
//! algorithm or a CUDA core implementation before such transformations…
//! Our categorization provides a first step toward the algorithm level
//! reasoning about MMU suitability." This module implements that step on
//! top of the timing model: given the operation trace of an *existing
//! CUDA-core implementation* plus a description of how its arithmetic
//! would map onto MMA tiles, it predicts the tensor-core variant's
//! speedup and names the reason.

use cubie_device::DeviceSpec;
use cubie_kernels::Quadrant;
use cubie_sim::{time_workload, Limiter, WorkloadTrace};
use serde::{Deserialize, Serialize};

/// How the kernel's arithmetic would map onto MMA tiles — the knobs a
/// parallel-algorithm designer can usually estimate *before* writing the
/// tensor-core kernel (Observation 1's transformation, quantified).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmaMapping {
    /// Fraction of the CUDA-core FP64 work expressible as matrix
    /// multiply-accumulate (1.0 for GEMM; below 1 when element-wise
    /// fix-ups remain).
    pub mappable_fraction: f64,
    /// FLOP inflation of the MMA shape: padded tiles, replicated
    /// operands, discarded outputs (e.g. 8× for GEMV's replicated
    /// columns, 2 / output-utilization in general). ≥ 1.
    pub redundancy: f64,
    /// Fraction of the input operands that are constants and never load
    /// (Quadrant II/III: 0.5; otherwise 0).
    pub constant_input_fraction: f64,
    /// Fraction of the 8×8 MMA output that carries meaning (Figure 2's
    /// output utilization).
    pub output_utilization: f64,
    /// Fraction of the strided/random traffic the reorganized data
    /// layout converts to coalesced streams (Observation 8's lever).
    pub regularization: f64,
}

impl MmaMapping {
    /// The utilization quadrant this mapping lands in (Figure 2).
    pub fn quadrant(&self) -> Quadrant {
        let full_input = self.constant_input_fraction < 0.25;
        let full_output = self.output_utilization >= 0.99;
        match (full_input, full_output) {
            (true, true) => Quadrant::I,
            (false, true) => Quadrant::II,
            (false, false) => Quadrant::III,
            (true, false) => Quadrant::IV,
        }
    }
}

/// The advisor's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recommendation {
    /// Clear compute-side win: port to the MMU.
    StrongBenefit,
    /// Some benefit, mostly from layout regularization.
    ModestBenefit,
    /// Memory-bound either way: port only for the layout, not the FLOPs.
    MemoryBound,
    /// The MMA redundancy eats the gain: stay on vector units.
    NotWorthIt,
}

/// A full prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// Predicted TC-over-CC speedup.
    pub predicted_speedup: f64,
    /// Limiting pipe of the existing CUDA-core implementation.
    pub cc_limiter: Limiter,
    /// Limiting pipe of the predicted tensor-core implementation.
    pub tc_limiter: Limiter,
    /// Figure 2 quadrant of the proposed mapping.
    pub quadrant: Quadrant,
    /// The verdict.
    pub recommendation: Recommendation,
}

/// Build the hypothetical tensor-core trace implied by `mapping`.
fn transform(trace: &WorkloadTrace, mapping: &MmaMapping) -> WorkloadTrace {
    let mut out = trace.clone();
    for k in out.kernels.iter_mut() {
        let ops = &mut k.ops;
        let mappable_flops = (ops.cc_flops() as f64 * mapping.mappable_fraction) as u64;
        // Remove the mapped CUDA-core work proportionally…
        let keep = 1.0 - mapping.mappable_fraction;
        ops.fma_f64 = (ops.fma_f64 as f64 * keep) as u64;
        ops.add_f64 = (ops.add_f64 as f64 * keep) as u64;
        ops.mul_f64 = (ops.mul_f64 as f64 * keep) as u64;
        // …and reissue it as MMAs, inflated by the mapping redundancy.
        let mma_flops = (mappable_flops as f64 * mapping.redundancy) as u64;
        ops.mma_f64 += mma_flops / cubie_core::counters::MMA_F64_FLOPS;
        // Constant operands never load.
        let saved = (ops.gmem_load.coalesced as f64 * mapping.constant_input_fraction) as u64;
        ops.gmem_load.coalesced -= saved.min(ops.gmem_load.coalesced);
        // Layout regularization converts irregular classes to coalesced.
        let conv_s = (ops.gmem_load.strided as f64 * mapping.regularization) as u64;
        let conv_r = (ops.gmem_load.random as f64 * mapping.regularization) as u64;
        ops.gmem_load.strided -= conv_s;
        ops.gmem_load.random -= conv_r;
        ops.gmem_load.coalesced += conv_s + conv_r;
        let sconv_s = (ops.gmem_store.strided as f64 * mapping.regularization) as u64;
        let sconv_r = (ops.gmem_store.random as f64 * mapping.regularization) as u64;
        ops.gmem_store.strided -= sconv_s;
        ops.gmem_store.random -= sconv_r;
        ops.gmem_store.coalesced += sconv_s + sconv_r;
        // The MMA path sheds the operand-shuffle integer traffic the
        // CUDA-core version pays.
        ops.int_ops = (ops.int_ops as f64 * keep.max(0.2)) as u64;
        // MMA chains shorten the dependent path roughly 4× (one MMA per
        // four FMA levels).
        k.critical_cycles *= 0.5;
    }
    out
}

/// Predict the tensor-core benefit of porting the kernel whose CUDA-core
/// trace is `cc_trace` under the proposed `mapping`, on `device`.
pub fn advise(device: &DeviceSpec, cc_trace: &WorkloadTrace, mapping: &MmaMapping) -> Advice {
    assert!(
        mapping.redundancy >= 1.0,
        "redundancy is an inflation factor"
    );
    assert!((0.0..=1.0).contains(&mapping.mappable_fraction));
    let cc = time_workload(device, cc_trace);
    let tc_trace = transform(cc_trace, mapping);
    let tc = time_workload(device, &tc_trace);
    let speedup = cc.total_s / tc.total_s;
    let cc_limiter = dominant_limiter(&cc);
    let tc_limiter = dominant_limiter(&tc);

    let memory_bound = matches!(cc_limiter, Limiter::Dram | Limiter::L2)
        && matches!(tc_limiter, Limiter::Dram | Limiter::L2);
    let recommendation = if speedup >= 1.5 {
        Recommendation::StrongBenefit
    } else if speedup >= 1.05 {
        if memory_bound {
            Recommendation::MemoryBound
        } else {
            Recommendation::ModestBenefit
        }
    } else if memory_bound && speedup >= 0.95 {
        Recommendation::MemoryBound
    } else {
        Recommendation::NotWorthIt
    };
    Advice {
        predicted_speedup: speedup,
        cc_limiter,
        tc_limiter,
        quadrant: mapping.quadrant(),
        recommendation,
    }
}

fn dominant_limiter(t: &cubie_sim::WorkloadTiming) -> Limiter {
    // The limiter of the launch contributing the most time.
    t.kernels
        .iter()
        .max_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap())
        .map(|k| k.limiter)
        .unwrap_or(Limiter::Launch)
}

/// Ready-made mappings for the suite's own kernels (used by tests and
/// the CLI to sanity-check the advisor against the measured variants).
pub fn reference_mapping(w: cubie_kernels::Workload) -> MmaMapping {
    use cubie_kernels::Workload::*;
    match w {
        Gemm | Pic | Fft | Stencil => MmaMapping {
            mappable_fraction: 1.0,
            redundancy: 1.0,
            constant_input_fraction: 0.0,
            output_utilization: 1.0,
            regularization: 0.5,
        },
        Scan => MmaMapping {
            mappable_fraction: 1.0,
            redundancy: 8.0, // constant-matrix products over useful adds
            constant_input_fraction: 0.5,
            output_utilization: 1.0,
            regularization: 0.0,
        },
        Reduction => MmaMapping {
            mappable_fraction: 1.0,
            redundancy: 8.0,
            constant_input_fraction: 0.5,
            output_utilization: 1.0 / 64.0,
            regularization: 0.0,
        },
        Bfs => MmaMapping {
            mappable_fraction: 1.0,
            redundancy: 8.0,
            constant_input_fraction: 0.0,
            output_utilization: 0.125,
            regularization: 0.8,
        },
        Gemv | Spmv => MmaMapping {
            mappable_fraction: 1.0,
            redundancy: 8.0, // replicated columns / diagonal extraction
            constant_input_fraction: 0.0,
            output_utilization: 0.125,
            regularization: 0.9,
        },
        Spgemm => MmaMapping {
            mappable_fraction: 1.0,
            redundancy: 2.0, // half the 8×8 tile is useful
            constant_input_fraction: 0.0,
            output_utilization: 0.5,
            regularization: 0.8,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_device::{b200, h200};
    use cubie_kernels::{gemm, gemv, spmv, Variant, Workload};

    #[test]
    fn gemm_mapping_is_quadrant_i_and_strong_on_h200() {
        let d = h200();
        let cc = gemm::trace(&gemm::GemmCase::square(2048), Variant::Cc);
        let m = reference_mapping(Workload::Gemm);
        let a = advise(&d, &cc, &m);
        assert_eq!(a.quadrant, Quadrant::I);
        assert!(
            a.predicted_speedup > 1.5,
            "GEMM should be a strong TC win: {a:?}"
        );
        assert_eq!(a.recommendation, Recommendation::StrongBenefit);
    }

    #[test]
    fn gemm_on_blackwell_is_not_worth_porting() {
        // FP64 TC peak == CC peak on B200 (Figure 12's regression): the
        // advisor must see through it.
        let d = b200();
        let cc = gemm::trace(&gemm::GemmCase::square(2048), Variant::Cc);
        let a = advise(&d, &cc, &reference_mapping(Workload::Gemm));
        assert!(
            a.predicted_speedup < 1.5,
            "equal peaks leave little compute headroom: {a:?}"
        );
    }

    #[test]
    fn spmv_is_recognized_as_memory_bound() {
        let d = h200();
        let m = cubie_sparse::generators::bcsstk39_like(8);
        let cc = spmv::trace(&m, Variant::CcE);
        let a = advise(&d, &cc, &reference_mapping(Workload::Spmv));
        assert_eq!(a.quadrant, Quadrant::IV);
        assert!(
            matches!(
                a.recommendation,
                Recommendation::MemoryBound | Recommendation::ModestBenefit
            ),
            "{a:?}"
        );
    }

    #[test]
    fn advisor_prediction_tracks_measured_gemv_direction() {
        let d = h200();
        let case = gemv::GemvCase { m: 40_960, n: 16 };
        let cc_e = gemv::trace(&case, Variant::CcE);
        let a = advise(&d, &cc_e, &reference_mapping(Workload::Gemv));
        // The measured TC variant is within ~2× of the prediction.
        let measured_tc = cubie_sim::time_workload(&d, &gemv::trace(&case, Variant::Tc)).total_s;
        let measured_cce = cubie_sim::time_workload(&d, &cc_e).total_s;
        let actual = measured_cce / measured_tc;
        let ratio = a.predicted_speedup / actual;
        assert!(
            (0.4..2.5).contains(&ratio),
            "predicted {:.2} vs actual {:.2}",
            a.predicted_speedup,
            actual
        );
    }

    #[test]
    fn quadrant_classification_follows_figure_2() {
        assert_eq!(reference_mapping(Workload::Gemm).quadrant(), Quadrant::I);
        assert_eq!(reference_mapping(Workload::Scan).quadrant(), Quadrant::II);
        assert_eq!(
            reference_mapping(Workload::Reduction).quadrant(),
            Quadrant::III
        );
        assert_eq!(reference_mapping(Workload::Spmv).quadrant(), Quadrant::IV);
    }

    #[test]
    #[should_panic]
    fn rejects_deflating_redundancy() {
        let d = h200();
        let cc = gemm::trace(&gemm::GemmCase::square(256), Variant::Cc);
        let mut m = reference_mapping(Workload::Gemm);
        m.redundancy = 0.5;
        let _ = advise(&d, &cc, &m);
    }
}
