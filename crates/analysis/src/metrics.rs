//! NCU-style architectural metric extraction (Figure 11).
//!
//! The paper collects "memory efficiency, compute throughput, and
//! instruction pipeline usage for FMA and tensor operations" with Nsight
//! Compute. Here the same family of metrics is derived from the simulated
//! pipe utilizations and operation mixes of a workload trace.

use cubie_device::DeviceSpec;
use cubie_sim::{time_workload, WorkloadTrace};
use serde::{Deserialize, Serialize};

/// Names of the metric dimensions, in [`ArchMetrics::values`] order.
pub const METRIC_NAMES: [&str; 8] = [
    "dram_util",
    "l1_util",
    "tensor_pipe_util",
    "fma_pipe_util",
    "log_arith_intensity",
    "tensor_op_fraction",
    "latency_bound_fraction",
    "constant_operand_fraction",
];

/// One workload's architectural metric vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchMetrics {
    /// Workload label, e.g. `"Cubie-SpMV"`.
    pub name: String,
    /// Suite the workload belongs to.
    pub suite: &'static str,
    /// Metric values in [`METRIC_NAMES`] order.
    pub values: Vec<f64>,
}

/// Extract the metric vector of a workload trace on a device.
pub fn metrics_of(
    name: impl Into<String>,
    suite: &'static str,
    device: &DeviceSpec,
    trace: &WorkloadTrace,
) -> ArchMetrics {
    let t = time_workload(device, trace);
    let ops = &t.total_ops;
    let ai = ops.arithmetic_intensity().unwrap_or(1e-3).max(1e-3).log10();
    let tensor_work = ops.tc_flops() as f64 + (ops.mma_b1 * 8192) as f64;
    let scalar_work = ops.cc_flops() as f64 + ops.int_ops as f64;
    let tensor_fraction = if tensor_work + scalar_work > 0.0 {
        tensor_work / (tensor_work + scalar_work)
    } else {
        0.0
    };
    // Fraction of the workload's time spent latency- or launch-bound —
    // the regime the small Quadrant II/III kernels live in.
    let latency_time: f64 = t
        .kernels
        .iter()
        .filter(|k| {
            matches!(
                k.limiter,
                cubie_sim::Limiter::Latency | cubie_sim::Limiter::Launch
            )
        })
        .map(|k| k.time_s)
        .sum();
    let latency_fraction = if t.total_s > 0.0 {
        latency_time / t.total_s
    } else {
        0.0
    };
    // Constant-operand residency (Quadrant II/III's defining trait).
    let mem_total = (ops.gmem_bytes() + ops.l2_bytes + ops.smem_bytes + ops.cmem_bytes) as f64;
    let constant_fraction = if mem_total > 0.0 {
        ops.cmem_bytes as f64 / mem_total
    } else {
        0.0
    };
    ArchMetrics {
        name: name.into(),
        suite,
        values: vec![
            t.mem_util(),
            t.l1_util(),
            t.tc_util().max(t.b1_util()),
            t.cc_util(),
            ai,
            tensor_fraction,
            latency_fraction,
            constant_fraction,
        ],
    }
}

/// Metric vectors of all ten Cubie workloads (TC variant, one
/// representative Table 2 case each) on `device`. Sparse/graph inputs are
/// generated at the given scales.
pub fn cubie_metrics(
    device: &DeviceSpec,
    sparse_scale: usize,
    graph_scale: usize,
) -> Vec<ArchMetrics> {
    use cubie_kernels::{prepare_cases, Variant, Workload};
    Workload::ALL
        .iter()
        .map(|w| {
            let cases = prepare_cases(*w, sparse_scale, graph_scale);
            // Middle case as the representative.
            let case = &cases[2];
            let trace = case
                .trace(Variant::Tc)
                .expect("TC variant exists for every workload");
            metrics_of(format!("Cubie-{}", w.spec().name), "Cubie", device, &trace)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_device::h200;
    use cubie_kernels::{gemm, scan, Variant};

    #[test]
    fn gemm_tc_is_tensor_heavy() {
        let d = h200();
        let t = gemm::trace(&gemm::GemmCase::square(2048), Variant::Tc);
        let m = metrics_of("gemm", "test", &d, &t);
        assert_eq!(m.values.len(), METRIC_NAMES.len());
        let tensor_fraction = m.values[5];
        assert!(tensor_fraction > 0.9, "got {tensor_fraction}");
        let tc_util = m.values[2];
        assert!(tc_util > 0.5, "got {tc_util}");
    }

    #[test]
    fn baseline_has_zero_tensor_usage() {
        let d = h200();
        let t = gemm::trace(&gemm::GemmCase::square(1024), Variant::Baseline);
        let m = metrics_of("gemm-base", "test", &d, &t);
        assert_eq!(m.values[2], 0.0);
        assert_eq!(m.values[5], 0.0);
    }

    #[test]
    fn scan_and_gemm_differ_substantially() {
        let d = h200();
        let a = metrics_of(
            "gemm",
            "t",
            &d,
            &gemm::trace(&gemm::GemmCase::square(2048), Variant::Tc),
        );
        let b = metrics_of(
            "scan",
            "t",
            &d,
            &scan::trace(&scan::ScanCase { n: 1024 }, Variant::Tc),
        );
        let dist: f64 = a
            .values
            .iter()
            .zip(&b.values)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "distance {dist}");
    }

    #[test]
    fn cubie_metrics_cover_all_workloads() {
        let d = h200();
        let m = cubie_metrics(&d, 64, 512);
        assert_eq!(m.len(), 10);
        for a in &m {
            assert!(a.values.iter().all(|v| v.is_finite()), "{}", a.name);
        }
    }
}
