//! Benchmark-suite coverage analyses (Section 10).
//!
//! * [`matrix_corpus_study`] / [`graph_corpus_study`] — Figure 10: PCA of
//!   structural features over a synthetic corpus standing in for the
//!   SuiteSparse collection, with the five Table 3/4 representatives
//!   projected into the same space, plus the dispersion / range-coverage
//!   metrics the paper quotes.
//! * [`suite_diversity_study`] — Figure 11: PCA of architectural metrics
//!   over Rodinia, SHOC and Cubie workloads, with per-suite spread.
//! * [`TABLE7`] — the dwarf/feature comparison of Table 7.

use cubie_device::DeviceSpec;
use cubie_graph::features::GraphFeatures;
use cubie_graph::generators as graph_gen;
use cubie_sparse::features::MatrixFeatures;
use cubie_sparse::generators as sparse_gen;
use serde::{Deserialize, Serialize};

use crate::metrics::{cubie_metrics, metrics_of};
use crate::minisuites;
use crate::pca::Pca;

/// One labelled point in the 2-D principal component space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcaPoint {
    /// Label ("corpus-…" or a representative's name).
    pub name: String,
    /// PC1/PC2 coordinates.
    pub xy: [f64; 2],
}

/// A Figure 10-style corpus study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStudy {
    /// Background corpus projections.
    pub corpus: Vec<PcaPoint>,
    /// The five representatives' projections.
    pub representatives: Vec<PcaPoint>,
    /// Mean pairwise distance among the representatives (the paper's
    /// "dispersion").
    pub representative_dispersion: f64,
    /// Mean nearest-neighbour distance within the corpus (the paper's
    /// comparison value).
    pub nearest_neighbour_dispersion: f64,
    /// Fraction of each PC's corpus range spanned by the representatives.
    pub range_coverage: [f64; 2],
    /// Fraction of corpus points lying close to (within 25 % of the
    /// PC-space diagonal of) at least one representative.
    pub near_representative_fraction: f64,
    /// Variance explained by the two plotted components.
    pub explained_variance: f64,
}

fn finish_study(
    corpus_vecs: Vec<(String, Vec<f64>)>,
    rep_vecs: Vec<(String, Vec<f64>)>,
) -> CorpusStudy {
    let all: Vec<Vec<f64>> = corpus_vecs.iter().map(|(_, v)| v.clone()).collect();
    let pca = Pca::fit(&all);
    let project = |vs: &[(String, Vec<f64>)]| -> Vec<PcaPoint> {
        vs.iter()
            .map(|(n, v)| {
                let p = pca.project(v, 2);
                PcaPoint {
                    name: n.clone(),
                    xy: [p[0], p[1]],
                }
            })
            .collect()
    };
    let corpus = project(&corpus_vecs);
    let representatives = project(&rep_vecs);

    let dist = |a: &[f64; 2], b: &[f64; 2]| ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();

    // Representative dispersion: mean pairwise distance.
    let mut dsum = 0.0;
    let mut dcnt = 0usize;
    for i in 0..representatives.len() {
        for j in i + 1..representatives.len() {
            dsum += dist(&representatives[i].xy, &representatives[j].xy);
            dcnt += 1;
        }
    }
    let representative_dispersion = dsum / dcnt.max(1) as f64;

    // Corpus nearest-neighbour dispersion.
    let mut nnsum = 0.0;
    for (i, p) in corpus.iter().enumerate() {
        let mut best = f64::INFINITY;
        for (j, q) in corpus.iter().enumerate() {
            if i != j {
                best = best.min(dist(&p.xy, &q.xy));
            }
        }
        nnsum += best;
    }
    let nearest_neighbour_dispersion = nnsum / corpus.len().max(1) as f64;

    // Range coverage per component.
    let mut range_coverage = [0.0f64; 2];
    for (c, rc) in range_coverage.iter_mut().enumerate() {
        let (cmin, cmax) = corpus
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.xy[c]), hi.max(p.xy[c]))
            });
        let (rmin, rmax) = representatives
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
                (lo.min(p.xy[c]), hi.max(p.xy[c]))
            });
        *rc = if cmax > cmin {
            ((rmax - rmin) / (cmax - cmin)).min(1.0)
        } else {
            1.0
        };
    }

    // Near-representative fraction.
    let (xlo, xhi) = corpus
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.xy[0]), hi.max(p.xy[0]))
        });
    let (ylo, yhi) = corpus
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.xy[1]), hi.max(p.xy[1]))
        });
    let diag = ((xhi - xlo).powi(2) + (yhi - ylo).powi(2)).sqrt();
    let radius = 0.25 * diag;
    let near = corpus
        .iter()
        .filter(|p| representatives.iter().any(|r| dist(&p.xy, &r.xy) <= radius))
        .count();
    let near_representative_fraction = near as f64 / corpus.len().max(1) as f64;

    CorpusStudy {
        corpus,
        representatives,
        representative_dispersion,
        nearest_neighbour_dispersion,
        range_coverage,
        near_representative_fraction,
        explained_variance: pca.explained_variance(2),
    }
}

/// Figure 10b: PCA of matrix structural features over a synthetic corpus
/// of `corpus_size` matrices, with the five Table 4 representatives
/// (generated at `rep_scale`).
pub fn matrix_corpus_study(corpus_size: usize, rep_scale: usize, seed: u64) -> CorpusStudy {
    let corpus_vecs: Vec<(String, Vec<f64>)> = sparse_gen::diverse_corpus(corpus_size, seed)
        .into_iter()
        .map(|(n, m)| (n, MatrixFeatures::of(&m).to_vec()))
        .collect();
    let rep_vecs: Vec<(String, Vec<f64>)> = sparse_gen::table4_matrices(rep_scale)
        .into_iter()
        .map(|(info, m)| (info.name.to_string(), MatrixFeatures::of(&m).to_vec()))
        .collect();
    finish_study(corpus_vecs, rep_vecs)
}

/// Figure 10a: PCA of graph structural features over a synthetic corpus
/// of `corpus_size` graphs, with the five Table 3 representatives
/// (generated at `rep_scale`).
pub fn graph_corpus_study(corpus_size: usize, rep_scale: usize, seed: u64) -> CorpusStudy {
    let corpus_vecs: Vec<(String, Vec<f64>)> = graph_gen::diverse_graph_corpus(corpus_size, seed)
        .into_iter()
        .map(|(n, g)| (n, GraphFeatures::of(&g).to_vec()))
        .collect();
    let rep_vecs: Vec<(String, Vec<f64>)> = graph_gen::table3_graphs(rep_scale)
        .into_iter()
        .map(|(info, g)| (info.name.to_string(), GraphFeatures::of(&g).to_vec()))
        .collect();
    finish_study(corpus_vecs, rep_vecs)
}

/// A Figure 11-style suite diversity study.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SuiteStudy {
    /// Projected points with their suite label.
    pub points: Vec<(String, &'static str, [f64; 2])>,
    /// Per-suite spread: mean distance to the suite centroid, keyed by
    /// suite name.
    pub spread: Vec<(&'static str, f64)>,
}

/// Figure 11: PCA of architectural metrics across Rodinia, SHOC and
/// Cubie workloads on `device`.
pub fn suite_diversity_study(
    device: &DeviceSpec,
    sparse_scale: usize,
    graph_scale: usize,
) -> SuiteStudy {
    let mut all = Vec::new();
    for k in minisuites::rodinia() {
        all.push(metrics_of(k.name, "Rodinia", device, &k.trace));
    }
    for k in minisuites::shoc() {
        all.push(metrics_of(k.name, "SHOC", device, &k.trace));
    }
    all.extend(cubie_metrics(device, sparse_scale, graph_scale));

    let vecs: Vec<Vec<f64>> = all.iter().map(|a| a.values.clone()).collect();
    let pca = Pca::fit(&vecs);
    let points: Vec<(String, &'static str, [f64; 2])> = all
        .iter()
        .map(|a| {
            let p = pca.project(&a.values, 2);
            (a.name.clone(), a.suite, [p[0], p[1]])
        })
        .collect();

    let mut spread = Vec::new();
    for suite in ["Rodinia", "SHOC", "Cubie"] {
        let pts: Vec<&[f64; 2]> = points
            .iter()
            .filter(|(_, s, _)| *s == suite)
            .map(|(_, _, p)| p)
            .collect();
        let cx = pts.iter().map(|p| p[0]).sum::<f64>() / pts.len() as f64;
        let cy = pts.iter().map(|p| p[1]).sum::<f64>() / pts.len() as f64;
        let s = pts
            .iter()
            .map(|p| ((p[0] - cx).powi(2) + (p[1] - cy).powi(2)).sqrt())
            .sum::<f64>()
            / pts.len() as f64;
        spread.push((suite, s));
    }
    SuiteStudy { points, spread }
}

/// One Table 7 row: dwarf coverage counts per suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DwarfRow {
    /// Dwarf name.
    pub dwarf: &'static str,
    /// Rodinia workload count (paper's Table 7).
    pub rodinia: u32,
    /// SHOC workload count.
    pub shoc: u32,
    /// Cubie workload count.
    pub cubie: u32,
}

/// Table 7's dwarf rows.
pub const TABLE7: [DwarfRow; 9] = [
    DwarfRow {
        dwarf: "Dense linear algebra",
        rodinia: 3,
        shoc: 2,
        cubie: 2,
    },
    DwarfRow {
        dwarf: "Sparse linear algebra",
        rodinia: 0,
        shoc: 0,
        cubie: 2,
    },
    DwarfRow {
        dwarf: "Spectral methods",
        rodinia: 0,
        shoc: 1,
        cubie: 1,
    },
    DwarfRow {
        dwarf: "N-Body",
        rodinia: 0,
        shoc: 1,
        cubie: 1,
    },
    DwarfRow {
        dwarf: "Structured grids",
        rodinia: 4,
        shoc: 1,
        cubie: 1,
    },
    DwarfRow {
        dwarf: "Unstructured grids",
        rodinia: 2,
        shoc: 0,
        cubie: 0,
    },
    DwarfRow {
        dwarf: "MapReduce",
        rodinia: 0,
        shoc: 3,
        cubie: 2,
    },
    DwarfRow {
        dwarf: "Graph traversal",
        rodinia: 2,
        shoc: 0,
        cubie: 1,
    },
    DwarfRow {
        dwarf: "Dynamic programming",
        rodinia: 1,
        shoc: 0,
        cubie: 0,
    },
];

/// Features evaluated per suite (Table 7's lower half).
pub const TABLE7_FEATURES: [(&str, [bool; 3]); 6] = [
    ("Parallelization pattern", [true, false, true]),
    ("Performance", [true, true, true]),
    ("Power and energy", [true, true, true]),
    ("Precision", [false, false, true]),
    ("Memory bandwidth", [false, true, true]),
    ("CPU-GPU data transfer", [true, true, false]),
];

#[cfg(test)]
mod tests {
    use super::*;
    use cubie_device::h200;

    #[test]
    fn matrix_study_metrics_behave() {
        let s = matrix_corpus_study(60, 32, 11);
        assert_eq!(s.representatives.len(), 5);
        assert!(s.representative_dispersion.is_finite());
        assert!(
            s.representative_dispersion > s.nearest_neighbour_dispersion,
            "representatives ({}) should be more dispersed than corpus \
             nearest neighbours ({}) — the paper's Figure 10 claim",
            s.representative_dispersion,
            s.nearest_neighbour_dispersion
        );
        assert!(s.range_coverage[0] > 0.1);
        assert!(s.explained_variance > 0.4);
    }

    #[test]
    fn graph_study_metrics_behave() {
        let s = graph_corpus_study(40, 256, 13);
        assert_eq!(s.representatives.len(), 5);
        assert!(s.representative_dispersion > s.nearest_neighbour_dispersion);
        assert!(s.near_representative_fraction > 0.4);
    }

    #[test]
    fn cubie_spreads_wider_than_rodinia_and_shoc() {
        let study = suite_diversity_study(&h200(), 64, 512);
        let get = |name: &str| {
            study
                .spread
                .iter()
                .find(|(s, _)| *s == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        let (cubie, rodinia, shoc) = (get("Cubie"), get("Rodinia"), get("SHOC"));
        // Observation 9: Cubie spans a wider behavioural area.
        assert!(
            cubie > rodinia && cubie > shoc,
            "Cubie spread {cubie:.3} vs Rodinia {rodinia:.3} / SHOC {shoc:.3}"
        );
    }

    #[test]
    fn table7_totals_match_paper() {
        let rodinia: u32 = TABLE7.iter().map(|r| r.rodinia).sum();
        let shoc: u32 = TABLE7.iter().map(|r| r.shoc).sum();
        let cubie: u32 = TABLE7.iter().map(|r| r.cubie).sum();
        assert_eq!(rodinia, 12);
        assert_eq!(shoc, 8);
        assert_eq!(cubie, 10, "Cubie's ten workloads");
        // Dwarf counts: Rodinia 5, SHOC 5, Cubie 7.
        assert_eq!(TABLE7.iter().filter(|r| r.rodinia > 0).count(), 5);
        assert_eq!(TABLE7.iter().filter(|r| r.shoc > 0).count(), 5);
        assert_eq!(TABLE7.iter().filter(|r| r.cubie > 0).count(), 7);
    }

    #[test]
    fn cubie_evaluates_five_features() {
        let cubie_features = TABLE7_FEATURES.iter().filter(|(_, v)| v[2]).count();
        assert_eq!(cubie_features, 5, "Table 7: Cubie evaluates 5 features");
    }
}
