//! The MMU utilization categorization of Figure 2.
//!
//! Each workload's MMA usage is summarized by two fractions: how much of
//! the *input* operand matrices must actually be loaded (constant
//! operands don't count — Quadrants II/III), and how much of the 8×8
//! *output* matrix carries meaningful results (diagonals and half-tiles
//! — Quadrants III/IV).

use cubie_kernels::Workload;
use serde::{Deserialize, Serialize};

/// Input/output operand utilization of one workload's MMA pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Utilization {
    /// The workload.
    pub workload: Workload,
    /// Fraction of input operand elements loaded from memory (1.0 =
    /// both `A` and `B` are data; 0.5 = one operand is a constant).
    pub input: f64,
    /// Fraction of the 8×8 output used.
    pub output: f64,
    /// Which operand is reused across MMAs, per Figure 2's Quadrant I
    /// discussion.
    pub reuse: &'static str,
}

/// The Figure 2 utilization data for all ten workloads.
pub fn utilizations() -> Vec<Utilization> {
    use Workload::*;
    vec![
        Utilization {
            workload: Gemm,
            input: 1.0,
            output: 1.0,
            reuse: "C accumulates across k (inputs re-loaded)",
        },
        Utilization {
            workload: Pic,
            input: 1.0,
            output: 1.0,
            reuse: "B (push matrix) reused across substeps",
        },
        Utilization {
            workload: Fft,
            input: 1.0,
            output: 1.0,
            reuse: "A (twiddled DFT matrix) loaded once, reused across the batch",
        },
        Utilization {
            workload: Stencil,
            input: 1.0,
            output: 1.0,
            reuse: "B (band factors) resident in constant memory",
        },
        Utilization {
            workload: Scan,
            input: 0.5,
            output: 1.0,
            reuse: "constant U/L/O operands never loaded",
        },
        Utilization {
            workload: Reduction,
            input: 0.5,
            output: 1.0 / 64.0,
            reuse: "constant one-row/one-column operands",
        },
        Utilization {
            workload: Bfs,
            input: 1.0,
            output: 8.0 / 64.0,
            reuse: "B (frontier segment) reused across a band's slices",
        },
        Utilization {
            workload: Gemv,
            input: 1.0,
            output: 8.0 / 64.0,
            reuse: "x broadcast reused; diagonal extracted",
        },
        Utilization {
            workload: Spmv,
            input: 1.0,
            output: 8.0 / 64.0,
            reuse: "C accumulates across a bundle's steps; diagonal extracted",
        },
        Utilization {
            workload: Spgemm,
            input: 1.0,
            output: 0.5,
            reuse: "A block pair reused; diagonal quadrants kept",
        },
    ]
}

/// Utilization record of one workload.
pub fn utilization_of(w: Workload) -> Utilization {
    utilizations()
        .into_iter()
        .find(|u| u.workload == w)
        .expect("every workload has a utilization record")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_is_consistent_with_quadrants() {
        for u in utilizations() {
            let q = u.workload.spec().quadrant;
            assert_eq!(
                q.full_input(),
                u.input >= 1.0,
                "{:?}: quadrant {q} vs input {}",
                u.workload,
                u.input
            );
            assert_eq!(
                q.full_output(),
                u.output >= 1.0,
                "{:?}: quadrant {q} vs output {}",
                u.workload,
                u.output
            );
        }
    }

    #[test]
    fn every_workload_is_covered() {
        assert_eq!(utilizations().len(), 10);
        for w in Workload::ALL {
            let _ = utilization_of(w);
        }
    }

    #[test]
    fn quadrant_iv_diagonal_kernels_use_eighth_of_output() {
        for w in [Workload::Gemv, Workload::Spmv, Workload::Bfs] {
            assert!((utilization_of(w).output - 0.125).abs() < 1e-12);
        }
        // SpGEMM keeps half the tile — the "slightly higher utilization"
        // of Section 4.
        assert!(utilization_of(Workload::Spgemm).output > 0.125);
    }

    #[test]
    fn reduction_uses_least_output() {
        let min = utilizations()
            .into_iter()
            .min_by(|a, b| a.output.partial_cmp(&b.output).unwrap())
            .unwrap();
        assert_eq!(min.workload, Workload::Reduction);
    }
}
