//! The FP64 accuracy study of Table 6: every workload variant's output
//! compared element-wise against the serial CPU ground truth
//! (`Average_Error` and `Max_Error`, Section 8). BFS is excluded (no
//! floating point). TC and CC are verified bit-identical and reported as
//! one column, exactly as the paper groups them.

use cubie_core::ErrorStats;
use cubie_kernels::{
    fft, gemm, gemv, pic, reduction, scan, spgemm, spmv, stencil, Variant, Workload,
};
use cubie_sparse::Csr;
use serde::{Deserialize, Serialize};

/// One Table 6 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorRow {
    /// The workload.
    pub workload: Workload,
    /// The representative case evaluated.
    pub case_label: String,
    /// Baseline error (`None` for PiC, which has no baseline).
    pub baseline: Option<ErrorStats>,
    /// TC/CC error (verified bit-identical, reported together as in the
    /// paper).
    pub tc_cc: ErrorStats,
    /// CC-E error (`None` in Quadrant I where CC-E ≡ CC).
    pub cce: Option<ErrorStats>,
}

/// Case sizing for the error study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorScale {
    /// Small cases for fast tests.
    Quick,
    /// Representative cases (the harness default).
    Full,
}

/// Compare two sparse results over the union of their patterns
/// (absent entries count as zero).
fn compare_sparse(a: &Csr, b: &Csr) -> ErrorStats {
    assert_eq!(a.rows, b.rows);
    let mut sum = 0.0f64;
    let mut max = 0.0f64;
    let mut n = 0usize;
    for r in 0..a.rows {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            let d = match (ac.get(i), bc.get(j)) {
                (Some(&ca), Some(&cb)) if ca == cb => {
                    let d = (av[i] - bv[j]).abs();
                    i += 1;
                    j += 1;
                    d
                }
                (Some(&ca), Some(&cb)) if ca < cb => {
                    let d = av[i].abs();
                    i += 1;
                    d
                }
                (Some(_), Some(_)) => {
                    let d = bv[j].abs();
                    j += 1;
                    d
                }
                (Some(_), None) => {
                    let d = av[i].abs();
                    i += 1;
                    d
                }
                (None, Some(_)) => {
                    let d = bv[j].abs();
                    j += 1;
                    d
                }
                (None, None) => unreachable!(),
            };
            sum += d;
            max = max.max(d);
            n += 1;
        }
    }
    ErrorStats {
        avg: if n > 0 { sum / n as f64 } else { 0.0 },
        max,
        n,
    }
}

/// Run the full Table 6 study.
pub fn table6(scale: ErrorScale) -> Vec<ErrorRow> {
    let quick = scale == ErrorScale::Quick;
    let mut rows = Vec::new();

    // GEMV.
    {
        let case = if quick {
            gemv::GemvCase { m: 512, n: 16 }
        } else {
            gemv::GemvCase { m: 11_008, n: 16 }
        };
        let (a, x) = gemv::inputs(&case);
        let gold = gemv::reference(&a, &x);
        let err = |v: Variant| ErrorStats::compare(&gemv::run(&a, &x, v).0, &gold);
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc, "GEMV: TC and CC must be bit-identical");
        rows.push(ErrorRow {
            workload: Workload::Gemv,
            case_label: case.label(),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: Some(err(Variant::CcE)),
        });
    }

    // GEMM.
    {
        let case = gemm::GemmCase::square(if quick { 96 } else { 512 });
        let (a, b) = gemm::inputs(&case);
        let gold = gemm::reference(&a, &b);
        let err =
            |v: Variant| ErrorStats::compare(gemm::run(&a, &b, v).0.as_slice(), gold.as_slice());
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Gemm,
            case_label: case.label(),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: None,
        });
    }

    // SpMV.
    {
        let m = cubie_sparse::generators::conf5_like(if quick { 16 } else { 1 });
        let x = spmv::input_vector(&m);
        let gold = spmv::reference(&m, &x);
        let err = |v: Variant| ErrorStats::compare(&spmv::run(&m, &x, v).0, &gold);
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Spmv,
            case_label: format!("conf5-like {}r", m.rows),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: Some(err(Variant::CcE)),
        });
    }

    // SpGEMM.
    {
        let m = cubie_sparse::generators::spmsrts_like(if quick { 32 } else { 1 });
        let gold = spgemm::reference(&m);
        let err = |v: Variant| compare_sparse(&spgemm::run(&m, v).0, &gold);
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Spgemm,
            case_label: format!("spmsrts-like {}r", m.rows),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: Some(err(Variant::CcE)),
        });
    }

    // FFT.
    {
        let (h, w, batch) = if quick { (16, 32, 2) } else { (256, 256, 1) };
        let case = fft::FftCase { h, w, batch };
        let data = fft::input(&case);
        let gold: Vec<Vec<cubie_core::C64>> =
            data.iter().map(|g| fft::dft2_naive(h, w, g)).collect();
        let err = |v: Variant| {
            let (out, _) = fft::run(&case, &data, v);
            out.iter()
                .zip(&gold)
                .map(|(o, g)| ErrorStats::compare_c64(o, g))
                .fold(ErrorStats::default(), |acc, e| acc.merge(e))
        };
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Fft,
            case_label: case.label(),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: None,
        });
    }

    // Stencil.
    {
        let case = if quick {
            stencil::StencilCase::star2d(64, 64)
        } else {
            stencil::StencilCase::star2d(1024, 1024)
        };
        let x = stencil::input(&case);
        let gold = stencil::reference(&case, &x);
        let err = |v: Variant| ErrorStats::compare(&stencil::run(&case, &x, v).0, &gold);
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Stencil,
            case_label: case.label(),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: None,
        });
    }

    // Reduction.
    {
        let case = reduction::ReductionCase { n: 1024 };
        let x = reduction::input(&case);
        let gold = vec![reduction::reference(&x)];
        let err = |v: Variant| ErrorStats::compare(&[reduction::run(&x, v).0], &gold);
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Reduction,
            case_label: case.label(),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: Some(err(Variant::CcE)),
        });
    }

    // Scan.
    {
        let case = scan::ScanCase { n: 1024 };
        let x = scan::input(&case);
        let gold = scan::reference(&x);
        let err = |v: Variant| ErrorStats::compare(&scan::run(&x, v).0, &gold);
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Scan,
            case_label: case.label(),
            baseline: Some(err(Variant::Baseline)),
            tc_cc: tc,
            cce: Some(err(Variant::CcE)),
        });
    }

    // PiC (no baseline).
    {
        let case = pic::PicCase {
            n: if quick { 1024 } else { 65_536 },
        };
        let (parts, grid) = pic::input(&case);
        let gold = pic::run_serial_style(&parts, &grid);
        let flat = |p: &pic::Particles| -> Vec<f64> {
            p.pos
                .iter()
                .chain(p.vel.iter())
                .flat_map(|v| v.iter().copied())
                .collect()
        };
        let gold_flat = flat(&gold);
        let err = |v: Variant| {
            ErrorStats::compare(&flat(&pic::run(&case, &parts, &grid, v).0), &gold_flat)
        };
        let (tc, cc) = (err(Variant::Tc), err(Variant::Cc));
        assert_eq!(tc, cc);
        rows.push(ErrorRow {
            workload: Workload::Pic,
            case_label: case.label(),
            baseline: None,
            tc_cc: tc,
            cce: None,
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_quick_covers_nine_workloads() {
        let rows = table6(ErrorScale::Quick);
        // All workloads except BFS (no floating point).
        assert_eq!(rows.len(), 9);
        assert!(!rows.iter().any(|r| r.workload == Workload::Bfs));
    }

    #[test]
    fn errors_are_small_everywhere() {
        for row in table6(ErrorScale::Quick) {
            assert!(
                row.tc_cc.max < 1e-8,
                "{:?}: TC max error {}",
                row.workload,
                row.tc_cc.max
            );
            if let Some(b) = row.baseline {
                assert!(
                    b.max < 1e-8,
                    "{:?}: baseline max error {}",
                    row.workload,
                    b.max
                );
            }
        }
    }

    #[test]
    fn pic_has_no_baseline_row() {
        let rows = table6(ErrorScale::Quick);
        let pic = rows.iter().find(|r| r.workload == Workload::Pic).unwrap();
        assert!(pic.baseline.is_none());
    }

    #[test]
    fn compare_sparse_handles_pattern_mismatch() {
        use cubie_sparse::Coo;
        let mut a = Coo::new(2, 2);
        a.push(0, 0, 1.0);
        a.push(1, 1, 2.0);
        let mut b = Coo::new(2, 2);
        b.push(0, 0, 1.0);
        b.push(0, 1, 0.5);
        let e = compare_sparse(&Csr::from_coo(a), &Csr::from_coo(b));
        assert_eq!(e.n, 3);
        assert_eq!(e.max, 2.0);
    }
}
