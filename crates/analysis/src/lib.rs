//! # cubie-analysis
//!
//! The characterization analyses of the paper, built on the suite:
//!
//! * [`pca`] — standardization + principal component analysis
//!   (covariance matrix + Jacobi eigensolver), the paper's tool for the
//!   coverage studies of Figures 10 and 11.
//! * [`coverage`] — the input-representativeness study (Figure 10): PCA
//!   over synthetic matrix/graph corpora with the five Table 3/4
//!   representatives highlighted, plus the dispersion and range-coverage
//!   metrics the paper reports; and the dwarf/feature comparison of
//!   Table 7.
//! * [`metrics`] — NCU-style architectural metric extraction (memory
//!   efficiency, compute throughput, FMA/tensor pipe utilization) from
//!   simulated workload timings, feeding the suite-diversity PCA of
//!   Figure 11.
//! * [`minisuites`] — profile models of representative Rodinia and SHOC
//!   kernels (the comparison points of Figure 11 and Table 7).
//! * [`quadrants`] — the MMU utilization categorization of Figure 2:
//!   input/output operand utilization fractions per workload.
//! * [`errors`] — the FP64 accuracy study of Table 6: functional runs of
//!   every workload variant against the serial CPU ground truth.
//! * [`advisor`] — the Section 4 future-work extension: predict MMU
//!   accelerability from an existing CUDA-core implementation's trace
//!   plus a description of its MMA mapping.
//! * [`report`] — markdown/CSV rendering helpers shared by the `fig*` /
//!   `table*` harness binaries.

#![warn(missing_docs)]

pub mod advisor;
pub mod coverage;
pub mod errors;
pub mod metrics;
pub mod minisuites;
pub mod pca;
pub mod quadrants;
pub mod report;

pub use pca::Pca;
