//! Rendering helpers shared by the `fig*` / `table*` harness binaries:
//! markdown tables, CSV output, scientific-notation formatting, and
//! geometric means.

use std::io::Write;
use std::path::Path;

/// Format a value in compact scientific notation (e.g. `3.12E-13`),
/// matching the paper's Table 6 style.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    format!("{v:.2E}")
}

/// Format seconds with an adaptive unit.
pub fn seconds(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3} s")
    } else if v >= 1e-3 {
        format!("{:.3} ms", v * 1e3)
    } else if v >= 1e-6 {
        format!("{:.3} µs", v * 1e6)
    } else {
        format!("{:.1} ns", v * 1e9)
    }
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let s: f64 = values.iter().map(|v| v.ln()).sum();
    (s / values.len() as f64).exp()
}

/// Render a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let padded: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        format!("| {} |\n", padded.join(" | "))
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&format!("|-{}-|\n", sep.join("-|-")));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Write rows as CSV (simple quoting: fields containing commas or quotes
/// are quoted with doubled quotes).
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    writeln!(
        f,
        "{}",
        headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    f.flush()
}

/// The output directory for harness results (`results/`, created on
/// demand next to the workspace root or the current directory).
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("results");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(3.119e-13), "3.12E-13");
        assert_eq!(sci(1.0), "1.00E0");
    }

    #[test]
    fn seconds_units() {
        assert_eq!(seconds(2.5), "2.500 s");
        assert_eq!(seconds(2.5e-3), "2.500 ms");
        assert_eq!(seconds(2.5e-6), "2.500 µs");
        assert_eq!(seconds(2.5e-8), "25.0 ns");
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let g = geomean(&[2.0, 0.5, 4.0, 0.25]);
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|-"));
        assert!(lines[2].contains("| 1 "));
    }

    #[test]
    fn csv_quotes_commas() {
        let dir = std::env::temp_dir().join("cubie_csv_test.csv");
        write_csv(&dir, &["x"], &[vec!["a,b".into()]]).unwrap();
        let content = std::fs::read_to_string(&dir).unwrap();
        assert!(content.contains("\"a,b\""));
        let _ = std::fs::remove_file(&dir);
    }
}
