//! # cubie-obs
//!
//! Lightweight, always-compiled span/counter instrumentation for the
//! sweep engine, in the span/counter shape production training and
//! inference stacks use for phase attribution.
//!
//! The layer is **off by default and free when off**: [`span`] checks one
//! relaxed atomic and returns an inert guard, so instrumented hot paths
//! (case preparation, trace construction, timing, `par` worker loops) pay
//! a single branch. When enabled via [`enable`], each [`Span`] records a
//! phase name, a free-form label (the sweep uses `workload/variant`), the
//! recording thread, wall-clock start/duration against a process epoch,
//! and two counters (bytes, items) into a mutex-buffered process-global
//! recorder — spans are coarse (milliseconds each), so one mutex push per
//! span is far below measurement noise.
//!
//! Consumers ([`cubie profile`], `bench-smoke`) [`drain`] the recorder,
//! [`aggregate`] the records into a per-`(phase, label)` hotspot table,
//! and serialize a Chrome trace-event document ([`chrome_trace`])
//! loadable in `chrome://tracing` or Perfetto. The document is written
//! through the `cubie_golden` canonical JSON writer and sorted by
//! `(start, thread, phase, label)`, so it is byte-deterministic modulo
//! the timestamps and thread schedule of the profiled run.

#![warn(missing_docs)]

pub mod alloc;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use cubie_golden::{obj, Json};

/// Whether spans are being recorded. Relaxed is enough: enabling mid-span
/// only affects which spans are captured, never memory safety.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic source of small per-thread identifiers (thread 0 = first
/// thread that records a span, usually main). The `cubie-core` worker
/// pool keeps its threads alive across `par_*` calls, so pool workers
/// hold one tid for the whole process — per-worker busy-ms attribution
/// (and Chrome-trace rows) stay stable across sweeps instead of
/// allocating a fresh lane per spawned thread.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

struct Recorder {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        spans: Mutex::new(Vec::new()),
    })
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name (`"prepare"`, `"trace"`, `"time"`, `"par"`, …).
    pub phase: &'static str,
    /// Free-form label; the sweep layers use `workload/variant` spellings
    /// so hotspots aggregate by `workload × variant × phase`.
    pub label: String,
    /// Small per-thread identifier (first recording thread is 0).
    pub tid: u64,
    /// Start, nanoseconds since the process recorder epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Bytes processed/generated under this span (caller-defined).
    pub bytes: u64,
    /// Work items under this span (cases, kernels, indices — caller-defined).
    pub items: u64,
    /// Heap allocation events on the recording thread while the span was
    /// open (0 unless the binary installs [`alloc::CountingAlloc`]).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Start recording spans. Also clears any records from a previous
/// enable/disable cycle, so each profiled run starts from an empty buffer.
pub fn enable() {
    let _ = drain();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop recording spans (in-flight guards dropped after this still record;
/// they are cleared by the next [`enable`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are currently recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Take all recorded spans, sorted by `(start, tid, phase, label)`,
/// leaving the recorder empty.
pub fn drain() -> Vec<SpanRecord> {
    let mut spans = std::mem::take(&mut *recorder().spans.lock().unwrap());
    spans.sort_by(|a, b| {
        (a.start_ns, a.tid, a.phase, &a.label).cmp(&(b.start_ns, b.tid, b.phase, &b.label))
    });
    spans
}

/// An in-flight span; records itself on drop. Inert (a `None`) when the
/// recorder was disabled at construction.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span(Option<SpanInner>);

struct SpanInner {
    phase: &'static str,
    label: String,
    start: Instant,
    bytes: u64,
    items: u64,
    /// Thread allocation counters at open; the delta at drop is the
    /// span's attributed allocator traffic.
    alloc0: (u64, u64),
}

impl Span {
    /// Add to this span's byte counter (no-op when inert).
    pub fn add_bytes(&mut self, n: u64) {
        if let Some(inner) = &mut self.0 {
            inner.bytes += n;
        }
    }

    /// Add to this span's item counter (no-op when inert).
    pub fn add_items(&mut self, n: u64) {
        if let Some(inner) = &mut self.0 {
            inner.items += n;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else {
            return;
        };
        let rec = recorder();
        let start_ns = inner.start.duration_since(rec.epoch).as_nanos() as u64;
        let dur_ns = inner.start.elapsed().as_nanos() as u64;
        // Diff the thread counters before this record itself allocates
        // (the push below may grow the recorder buffer).
        let (ac, ab) = alloc::thread_allocs();
        let record = SpanRecord {
            phase: inner.phase,
            label: inner.label,
            tid: TID.with(|t| *t),
            start_ns,
            dur_ns,
            bytes: inner.bytes,
            items: inner.items,
            alloc_count: ac - inner.alloc0.0,
            alloc_bytes: ab - inner.alloc0.1,
        };
        rec.spans.lock().unwrap().push(record);
    }
}

/// Open a span over the enclosing scope. When recording is disabled this
/// is one relaxed load and no allocation.
#[inline]
pub fn span(phase: &'static str, label: &str) -> Span {
    if !enabled() {
        return Span(None);
    }
    // Snapshot after building the label so the span's own bookkeeping
    // allocation is not attributed to the phase.
    let label = label.to_string();
    let alloc0 = alloc::thread_allocs();
    Span(Some(SpanInner {
        phase,
        label,
        start: Instant::now(),
        bytes: 0,
        items: 0,
        alloc0,
    }))
}

/// Open a span with a lazily built label: `label()` runs only when
/// recording is enabled, so instrumented hot paths pay no formatting or
/// allocation when the recorder is off.
#[inline]
pub fn span_with(phase: &'static str, label: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span(None);
    }
    let label = label();
    let alloc0 = alloc::thread_allocs();
    Span(Some(SpanInner {
        phase,
        label,
        start: Instant::now(),
        bytes: 0,
        items: 0,
        alloc0,
    }))
}

// ---------------------------------------------------------------------------
// Named counters
// ---------------------------------------------------------------------------

/// Process-global named monotonic counters, separate from the span
/// recorder: always on (no [`enable`] gate), because consumers like the
/// `cubied` daemon export them continuously (`serve.hit`, `serve.miss`,
/// `serve.dedup`, `serve.queued`) rather than per profiled run. One
/// mutex-guarded map update per increment — counter sites are request- or
/// startup-frequency, never per-element hot paths.
fn counters_map() -> &'static Mutex<std::collections::BTreeMap<String, u64>> {
    static COUNTERS: OnceLock<Mutex<std::collections::BTreeMap<String, u64>>> = OnceLock::new();
    COUNTERS.get_or_init(|| Mutex::new(std::collections::BTreeMap::new()))
}

/// Add `delta` to the named monotonic counter, creating it at zero on
/// first use.
pub fn counter_add(name: &str, delta: u64) {
    let mut map = counters_map().lock().unwrap_or_else(|e| e.into_inner());
    *map.entry(name.to_string()).or_insert(0) += delta;
}

/// Current value of a named counter (0 if never incremented).
pub fn counter_get(name: &str) -> u64 {
    let map = counters_map().lock().unwrap_or_else(|e| e.into_inner());
    map.get(name).copied().unwrap_or(0)
}

/// Snapshot of every counter, sorted by name (byte-deterministic for a
/// deterministic increment set).
pub fn counters() -> Vec<(String, u64)> {
    let map = counters_map().lock().unwrap_or_else(|e| e.into_inner());
    map.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Reset every counter to an empty map. Test support — production
/// consumers treat counters as monotonic over the process lifetime.
pub fn reset_counters() {
    counters_map()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

// ---------------------------------------------------------------------------
// Log records
// ---------------------------------------------------------------------------

/// One retained log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Monotonic sequence number (0 = first line of the process).
    pub seq: u64,
    /// Nanoseconds since the recorder epoch.
    pub at_ns: u64,
    /// The line itself.
    pub line: String,
}

struct LogState {
    echo: AtomicBool,
    records: Mutex<Vec<LogRecord>>,
    next_seq: AtomicU64,
}

fn log_state() -> &'static LogState {
    static LOGS: OnceLock<LogState> = OnceLock::new();
    LOGS.get_or_init(|| LogState {
        echo: AtomicBool::new(true),
        records: Mutex::new(Vec::new()),
        next_seq: AtomicU64::new(0),
    })
}

/// Record a diagnostic line. The line is retained in a process-global
/// buffer (so a long-running `cubied` can replay startup banners — SIMD
/// dispatch, pool sizing — per connection or in `stats` responses) and,
/// unless [`set_log_echo`]`(false)` was called, also echoed to stderr,
/// preserving the one-shot CLI behaviour the CI forced-path greps assert.
pub fn log(line: impl Into<String>) {
    let line = line.into();
    let state = log_state();
    if state.echo.load(Ordering::Relaxed) {
        eprintln!("{line}");
    }
    let at_ns = recorder().epoch.elapsed().as_nanos() as u64;
    let seq = state.next_seq.fetch_add(1, Ordering::Relaxed);
    state
        .records
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(LogRecord { seq, at_ns, line });
}

/// Turn stderr echoing of [`log`] lines on or off; returns the previous
/// setting. Retention is unaffected — the daemon disables echo per
/// request handler so client responses stay clean JSON, while the lines
/// remain queryable via [`logs`].
pub fn set_log_echo(on: bool) -> bool {
    log_state().echo.swap(on, Ordering::Relaxed)
}

/// All retained log lines, in emission order.
pub fn logs() -> Vec<LogRecord> {
    log_state()
        .records
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

/// One row of the hotspot table: all spans of a `(phase, label)` group.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAgg {
    /// Phase name.
    pub phase: &'static str,
    /// Label the spans carried.
    pub label: String,
    /// Number of spans in the group.
    pub calls: u64,
    /// Summed span duration across all threads — the CPU (busy) time of
    /// the group.
    pub busy_s: f64,
    /// Wall-clock extent of the group: last end minus first start. With
    /// one worker this equals `busy_s`; under parallelism it is the
    /// interval the group was live.
    pub wall_s: f64,
    /// Summed byte counters.
    pub bytes: u64,
    /// Summed item counters.
    pub items: u64,
    /// Summed allocation events attributed to the group's spans.
    pub alloc_count: u64,
    /// Summed allocated bytes attributed to the group's spans.
    pub alloc_bytes: u64,
}

/// Aggregate spans into hotspot rows grouped by `(phase, label)`, sorted
/// by descending busy time (ties by phase then label, so the table is
/// deterministic for a deterministic span set).
pub fn aggregate(spans: &[SpanRecord]) -> Vec<PhaseAgg> {
    let mut groups: Vec<PhaseAgg> = Vec::new();
    let mut extent: Vec<(u64, u64)> = Vec::new(); // (min start, max end) per group
    for s in spans {
        let idx = groups
            .iter()
            .position(|g| g.phase == s.phase && g.label == s.label);
        let end = s.start_ns + s.dur_ns;
        match idx {
            Some(i) => {
                let g = &mut groups[i];
                g.calls += 1;
                g.busy_s += s.dur_ns as f64 * 1e-9;
                g.bytes += s.bytes;
                g.items += s.items;
                g.alloc_count += s.alloc_count;
                g.alloc_bytes += s.alloc_bytes;
                extent[i].0 = extent[i].0.min(s.start_ns);
                extent[i].1 = extent[i].1.max(end);
            }
            None => {
                groups.push(PhaseAgg {
                    phase: s.phase,
                    label: s.label.clone(),
                    calls: 1,
                    busy_s: s.dur_ns as f64 * 1e-9,
                    wall_s: 0.0,
                    bytes: s.bytes,
                    items: s.items,
                    alloc_count: s.alloc_count,
                    alloc_bytes: s.alloc_bytes,
                });
                extent.push((s.start_ns, end));
            }
        }
    }
    for (g, (start, end)) in groups.iter_mut().zip(&extent) {
        g.wall_s = (end - start) as f64 * 1e-9;
    }
    groups.sort_by(|a, b| {
        b.busy_s
            .partial_cmp(&a.busy_s)
            .unwrap()
            .then_with(|| (a.phase, &a.label).cmp(&(b.phase, &b.label)))
    });
    groups
}

/// Summed busy time of the spans whose phase is in `phases` — the basis
/// of the `cubie profile --check` coverage gate.
pub fn busy_of(spans: &[SpanRecord], phases: &[&str]) -> f64 {
    spans
        .iter()
        .filter(|s| phases.contains(&s.phase))
        .map(|s| s.dur_ns as f64 * 1e-9)
        .sum()
}

/// Serialize spans as a Chrome trace-event document (the `traceEvents`
/// JSON array format `chrome://tracing` and Perfetto load). Events are
/// complete (`"ph": "X"`) spans with microsecond timestamps; `cat` is the
/// phase, `name` the label, and the counters ride in `args`.
pub fn chrome_trace(spans: &[SpanRecord]) -> Json {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by(|a, b| {
        (a.start_ns, a.tid, a.phase, &a.label).cmp(&(b.start_ns, b.tid, b.phase, &b.label))
    });
    let events: Vec<Json> = sorted
        .iter()
        .map(|s| {
            obj(vec![
                (
                    "name",
                    if s.label.is_empty() {
                        s.phase.into()
                    } else {
                        format!("{}:{}", s.phase, s.label).into()
                    },
                ),
                ("cat", s.phase.into()),
                ("ph", "X".into()),
                // Trace-event timestamps are microseconds; keep sub-µs
                // resolution as a fraction.
                ("ts", (s.start_ns as f64 / 1e3).into()),
                ("dur", (s.dur_ns as f64 / 1e3).into()),
                ("pid", 1u64.into()),
                ("tid", s.tid.into()),
                (
                    "args",
                    obj(vec![
                        ("bytes", s.bytes.into()),
                        ("items", s.items.into()),
                        ("alloc_count", s.alloc_count.into()),
                        ("alloc_bytes", s.alloc_bytes.into()),
                    ]),
                ),
            ])
        })
        .collect();
    obj(vec![
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", "ms".into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tests share one process-global recorder, so they serialize on
    /// a lock rather than interleave enable/disable cycles.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = lock();
        disable();
        let _ = drain();
        {
            let mut s = span("prepare", "gemm");
            s.add_bytes(10);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn enabled_spans_record_counters_and_duration() {
        let _g = lock();
        enable();
        {
            let mut s = span("trace", "spmv/tc");
            s.add_bytes(123);
            s.add_items(5);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        disable();
        let spans = drain();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!((s.phase, s.label.as_str()), ("trace", "spmv/tc"));
        assert_eq!((s.bytes, s.items), (123, 5));
        assert!(s.dur_ns >= 2_000_000, "dur {} ns", s.dur_ns);
    }

    #[test]
    fn enable_clears_previous_records() {
        let _g = lock();
        enable();
        drop(span("time", "a"));
        enable();
        drop(span("time", "b"));
        disable();
        let spans = drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].label, "b");
    }

    #[test]
    fn spans_from_worker_threads_are_recorded() {
        let _g = lock();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| drop(span("par", "worker")));
            }
        });
        disable();
        let spans = drain();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.phase == "par"));
    }

    fn rec(phase: &'static str, label: &str, start: u64, dur: u64, bytes: u64) -> SpanRecord {
        SpanRecord {
            phase,
            label: label.to_string(),
            tid: 0,
            start_ns: start,
            dur_ns: dur,
            bytes,
            items: 1,
            alloc_count: 2,
            alloc_bytes: 64,
        }
    }

    #[test]
    fn aggregate_groups_and_sorts_by_busy_time() {
        let spans = vec![
            rec("trace", "spmv/tc", 0, 100, 8),
            rec("trace", "spmv/tc", 200, 300, 8),
            rec("prepare", "spmv", 0, 1000, 64),
        ];
        let agg = aggregate(&spans);
        assert_eq!(agg.len(), 2);
        assert_eq!((agg[0].phase, agg[0].label.as_str()), ("prepare", "spmv"));
        assert_eq!(agg[0].bytes, 64);
        let t = &agg[1];
        assert_eq!(t.calls, 2);
        assert_eq!(t.bytes, 16);
        assert_eq!(t.items, 2);
        assert!((t.busy_s - 400e-9).abs() < 1e-15);
        assert!((t.wall_s - 500e-9).abs() < 1e-15);
    }

    #[test]
    fn busy_of_filters_phases() {
        let spans = vec![
            rec("prepare", "a", 0, 100, 0),
            rec("par", "worker", 0, 900, 0),
        ];
        assert!((busy_of(&spans, &["prepare"]) - 100e-9).abs() < 1e-15);
        assert!((busy_of(&spans, &["prepare", "par"]) - 1000e-9).abs() < 1e-15);
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let _g = lock();
        reset_counters();
        counter_add("serve.miss", 1);
        counter_add("serve.hit", 2);
        counter_add("serve.hit", 3);
        assert_eq!(counter_get("serve.hit"), 5);
        assert_eq!(counter_get("serve.miss"), 1);
        assert_eq!(counter_get("serve.never"), 0);
        assert_eq!(
            counters(),
            vec![("serve.hit".into(), 5), ("serve.miss".into(), 1)]
        );
        reset_counters();
        assert_eq!(counter_get("serve.hit"), 0);
        assert!(counters().is_empty());
    }

    #[test]
    fn log_retains_lines_in_order_and_echo_toggles() {
        let _g = lock();
        let before = logs().len();
        let prev = set_log_echo(false);
        log("first line");
        log(format!("second {}", "line"));
        set_log_echo(prev);
        let all = logs();
        assert_eq!(all.len(), before + 2);
        let tail = &all[before..];
        assert_eq!(tail[0].line, "first line");
        assert_eq!(tail[1].line, "second line");
        assert!(tail[0].seq < tail[1].seq);
        assert!(tail[0].at_ns <= tail[1].at_ns);
    }

    #[test]
    fn chrome_trace_is_valid_and_deterministic() {
        let spans = vec![
            rec("trace", "spmv/tc", 2000, 500, 8),
            rec("prepare", "spmv", 0, 1500, 64),
        ];
        let doc = chrome_trace(&spans);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).unwrap();
        let events = back.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        // Sorted by start: prepare first even though given second.
        assert_eq!(
            events[0].get("name").unwrap().as_str(),
            Some("prepare:spmv")
        );
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[1].get("ts").unwrap().as_f64(), Some(2.0));
        assert_eq!(events[1].get("dur").unwrap().as_f64(), Some(0.5));
        // Byte determinism for a fixed span set.
        assert_eq!(text, chrome_trace(&spans).to_pretty_string());
    }
}
