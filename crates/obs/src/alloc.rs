//! Allocation telemetry: a counting wrapper around the system allocator.
//!
//! [`CountingAlloc`] forwards every request to [`std::alloc::System`]
//! and counts allocation events and requested bytes — into process-wide
//! relaxed atomics (totals) and into per-thread cells (so a [`Span`]
//! can attribute the allocations of *its own* thread to its phase
//! without cross-thread noise). `realloc` and `alloc_zeroed` count as
//! one event of the new size; `dealloc` is not counted — the telemetry
//! answers "how much allocator traffic do the hot loops generate", not
//! "what is live".
//!
//! The wrapper only counts in binaries that install it:
//!
//! ```text
//! #[global_allocator]
//! static ALLOC: cubie_obs::alloc::CountingAlloc = cubie_obs::alloc::CountingAlloc;
//! ```
//!
//! The `cubie` crate installs it (so the CLI, `bench-smoke`, `cubie
//! profile` and the root integration tests all count), as do the
//! `workspace-*` criterion benches. Where it is not installed every
//! counter reads 0 — the schema-compatible default the bench-smoke
//! baseline parser relies on. Overhead when installed is two relaxed
//! atomic adds and two thread-local increments per allocation, far below
//! the cost of the allocation itself.
//!
//! [`Span`]: crate::Span

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process totals (all threads).
static TOTAL_COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

// Per-thread counters. `const`-initialized `Cell`s with no destructor
// compile to plain TLS slots: no lazy init and no registration, so
// touching them inside the allocator cannot recurse or allocate.
thread_local! {
    static THREAD_COUNT: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// The counting allocator. Install with `#[global_allocator]`; see the
/// module docs.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn record(size: usize) {
        TOTAL_COUNT.fetch_add(1, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        // During thread teardown TLS may be gone; totals still count.
        let _ = THREAD_COUNT.try_with(|c| c.set(c.get() + 1));
        let _ = THREAD_BYTES.try_with(|c| c.set(c.get() + size as u64));
    }
}

// SAFETY: pure pass-through to `System`; the counters never influence
// which pointer is returned or how layouts are honoured.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// `(allocation events, requested bytes)` on the calling thread since it
/// started. Monotonic; callers snapshot and diff.
pub fn thread_allocs() -> (u64, u64) {
    (THREAD_COUNT.with(Cell::get), THREAD_BYTES.with(Cell::get))
}

/// `(allocation events, requested bytes)` process-wide since start.
/// Monotonic; callers snapshot and diff.
pub fn total_allocs() -> (u64, u64) {
    (
        TOTAL_COUNT.load(Ordering::Relaxed),
        TOTAL_BYTES.load(Ordering::Relaxed),
    )
}
