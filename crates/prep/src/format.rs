//! The length-prefixed little-endian binary snapshot layout.
//!
//! One snapshot file holds one prepared case — a Table 4 CSR matrix or
//! a Table 3 graph — laid out so that a warm load can hand the index
//! and value arrays to kernels **zero-copy**, as [`Slab`] windows over
//! the file mapping:
//!
//! ```text
//! 0x00  magic        "CUBPREP1"                       [u8; 8]
//! 0x08  kind         1 = CSR matrix, 2 = graph        u32 LE
//! 0x0c  key_len      length of the embedded key       u32 LE
//! 0x10  meta         matrix: rows, cols, nnz, 0       [u64; 4] LE
//!                    graph:  n, arcs, 0, 0
//! 0x30  payload_len  bytes of the payload region      u64 LE
//! 0x38  checksum     FNV-1a 64 over the payload       u64 LE
//! 0x40  key          canonical store key, zero-padded to a multiple of 8
//!       payload      matrix: row_ptr u64·(rows+1) | vals f64·nnz |
//!                            col_idx u32·nnz | zero pad to 8
//!                    graph:  offsets u64·(n+1) | adj u32·arcs | pad to 8
//! ```
//!
//! Every section starts 8-aligned (the header is 0x40 bytes, the key is
//! padded, u64/f64 sections precede the u32 section), so on 64-bit
//! little-endian hosts the sections reinterpret in place. Elsewhere the
//! decoder falls back to an owned `from_le_bytes` conversion — same
//! values, one copy. File length and checksum are validated before any
//! reinterpretation: a truncated or bit-rotted snapshot is reported as
//! a decode error (the store deletes it and regenerates), never served.

use std::sync::Arc;

use cubie_core::mmap::Mapping;
use cubie_core::slab::Slab;
use cubie_graph::csr_graph::CsrGraph;
use cubie_sparse::Csr;

/// Magic bytes every snapshot starts with ("CUBPREP" + layout digit).
pub const MAGIC: [u8; 8] = *b"CUBPREP1";

/// Header size in bytes (fixed fields before the embedded key).
const HEADER: usize = 0x40;

/// `kind` field value for a CSR matrix snapshot.
pub const KIND_MATRIX: u32 = 1;
/// `kind` field value for a graph snapshot.
pub const KIND_GRAPH: u32 = 2;

/// Whether payload sections can be reinterpreted in place on this host
/// (the on-disk layout is 64-bit little-endian).
pub const ZERO_COPY_OK: bool = cfg!(target_endian = "little") && cfg!(target_pointer_width = "64");

/// FNV-1a 64 over raw bytes — the snapshot payload checksum. Same
/// function (and test vectors) as the result-store key hash, but over
/// bytes rather than a canonical string.
pub fn fnv1a64_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A decoded snapshot: the prepared case it holds.
pub enum Decoded {
    /// A Table 4 CSR matrix.
    Matrix(Csr),
    /// A Table 3 graph.
    Graph(CsrGraph),
}

fn pad8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn put_u64s(out: &mut Vec<u8>, vals: impl Iterator<Item = u64>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn encode(kind: u32, key: &str, meta: [u64; 4], payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len().is_multiple_of(8));
    let key_bytes = key.as_bytes();
    let mut out = Vec::with_capacity(HEADER + pad8(key_bytes.len()) + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(key_bytes.len() as u32).to_le_bytes());
    put_u64s(&mut out, meta.into_iter());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64_bytes(&payload).to_le_bytes());
    out.extend_from_slice(key_bytes);
    out.resize(HEADER + pad8(key_bytes.len()), 0);
    out.extend_from_slice(&payload);
    out
}

/// Serialize a CSR matrix snapshot under its canonical key.
pub fn encode_matrix(key: &str, m: &Csr) -> Vec<u8> {
    let mut payload = Vec::with_capacity(pad8((m.rows + 1) * 8 + m.nnz() * 12));
    put_u64s(&mut payload, m.row_ptr.iter().map(|&p| p as u64));
    for &v in m.vals.iter() {
        payload.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for &c in m.col_idx.iter() {
        payload.extend_from_slice(&c.to_le_bytes());
    }
    payload.resize(pad8(payload.len()), 0);
    encode(
        KIND_MATRIX,
        key,
        [m.rows as u64, m.cols as u64, m.nnz() as u64, 0],
        payload,
    )
}

/// Serialize a graph snapshot under its canonical key.
pub fn encode_graph(key: &str, g: &CsrGraph) -> Vec<u8> {
    let mut payload = Vec::with_capacity(pad8((g.n + 1) * 8 + g.num_arcs() * 4));
    put_u64s(&mut payload, g.offsets.iter().map(|&p| p as u64));
    for &v in g.adj.iter() {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.resize(pad8(payload.len()), 0);
    encode(
        KIND_GRAPH,
        key,
        [g.n as u64, g.num_arcs() as u64, 0, 0],
        payload,
    )
}

fn get_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn get_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

/// A u64-on-disk section as a `Slab<usize>`: reinterpreted in place on
/// 64-bit LE hosts, converted element-wise elsewhere.
fn usize_section(
    map: &Arc<Mapping>,
    off: usize,
    n: usize,
    what: &str,
) -> Result<Slab<usize>, String> {
    if ZERO_COPY_OK {
        Slab::from_mapping(Arc::clone(map), off, n).map_err(|e| format!("{what}: {e}"))
    } else {
        let bytes = &map.bytes()[off..off + n * 8];
        let mut v = Vec::with_capacity(n);
        for ch in bytes.chunks_exact(8) {
            let x = u64::from_le_bytes(ch.try_into().unwrap());
            v.push(usize::try_from(x).map_err(|_| format!("{what}: value exceeds usize"))?);
        }
        Ok(v.into())
    }
}

/// A u32 section as a `Slab<u32>` (zero-copy on LE hosts).
fn u32_section(map: &Arc<Mapping>, off: usize, n: usize, what: &str) -> Result<Slab<u32>, String> {
    if cfg!(target_endian = "little") {
        Slab::from_mapping(Arc::clone(map), off, n).map_err(|e| format!("{what}: {e}"))
    } else {
        let bytes = &map.bytes()[off..off + n * 4];
        Ok(bytes
            .chunks_exact(4)
            .map(|ch| u32::from_le_bytes(ch.try_into().unwrap()))
            .collect::<Vec<_>>()
            .into())
    }
}

/// An f64 section as a `Slab<f64>` (zero-copy on LE hosts).
fn f64_section(map: &Arc<Mapping>, off: usize, n: usize, what: &str) -> Result<Slab<f64>, String> {
    if cfg!(target_endian = "little") {
        Slab::from_mapping(Arc::clone(map), off, n).map_err(|e| format!("{what}: {e}"))
    } else {
        let bytes = &map.bytes()[off..off + n * 8];
        Ok(bytes
            .chunks_exact(8)
            .map(|ch| f64::from_bits(u64::from_le_bytes(ch.try_into().unwrap())))
            .collect::<Vec<_>>()
            .into())
    }
}

/// Validate and decode a snapshot. `expect_key`, when given, pins the
/// embedded canonical key (the load path); `None` validates structure
/// only (open-time revalidation). Every failure is a description — the
/// caller deletes the file and regenerates; nothing here panics on
/// corrupt input.
pub fn decode(map: Arc<Mapping>, expect_key: Option<&str>) -> Result<Decoded, String> {
    let bytes = map.bytes();
    if bytes.len() < HEADER {
        return Err(format!("truncated header: {} bytes", bytes.len()));
    }
    if bytes[..8] != MAGIC {
        return Err("bad magic: not a cubie-prep snapshot".into());
    }
    let kind = get_u32(bytes, 0x08);
    let key_len = get_u32(bytes, 0x0c) as usize;
    let meta = [
        get_u64(bytes, 0x10),
        get_u64(bytes, 0x18),
        get_u64(bytes, 0x20),
        get_u64(bytes, 0x28),
    ];
    let payload_len = get_u64(bytes, 0x30) as usize;
    let checksum = get_u64(bytes, 0x38);
    let payload_off = HEADER
        .checked_add(pad8(key_len))
        .ok_or("key length overflows")?;
    let expect_total = payload_off
        .checked_add(payload_len)
        .ok_or("payload length overflows")?;
    if bytes.len() != expect_total {
        return Err(format!(
            "length mismatch: file is {} bytes, header implies {expect_total}",
            bytes.len()
        ));
    }
    let key = std::str::from_utf8(&bytes[HEADER..HEADER + key_len])
        .map_err(|_| "embedded key is not UTF-8".to_string())?;
    if let Some(expect) = expect_key {
        if key != expect {
            return Err(format!(
                "key mismatch at this address: stored `{key}`, requested `{expect}`"
            ));
        }
    }
    let payload = &bytes[payload_off..];
    let got = fnv1a64_bytes(payload);
    if got != checksum {
        return Err(format!(
            "checksum mismatch: stored {checksum:016x}, computed {got:016x}"
        ));
    }

    let elems = |count: u64, what: &str| -> Result<usize, String> {
        usize::try_from(count).map_err(|_| format!("{what} exceeds usize"))
    };
    match kind {
        KIND_MATRIX => {
            let rows = elems(meta[0], "rows")?;
            let cols = elems(meta[1], "cols")?;
            let nnz = elems(meta[2], "nnz")?;
            let need = pad8((rows + 1) * 8 + nnz * 12);
            if payload_len != need {
                return Err(format!(
                    "matrix payload is {payload_len} bytes, dims imply {need}"
                ));
            }
            let rp_off = payload_off;
            let vals_off = rp_off + (rows + 1) * 8;
            let ci_off = vals_off + nnz * 8;
            let row_ptr = usize_section(&map, rp_off, rows + 1, "row_ptr")?;
            let vals = f64_section(&map, vals_off, nnz, "vals")?;
            let col_idx = u32_section(&map, ci_off, nnz, "col_idx")?;
            if row_ptr.last() != Some(&nnz) {
                return Err("row_ptr does not end at nnz".into());
            }
            Ok(Decoded::Matrix(Csr::from_parts(
                rows, cols, row_ptr, col_idx, vals,
            )))
        }
        KIND_GRAPH => {
            let n = elems(meta[0], "vertices")?;
            let arcs = elems(meta[1], "arcs")?;
            let need = pad8((n + 1) * 8 + arcs * 4);
            if payload_len != need {
                return Err(format!(
                    "graph payload is {payload_len} bytes, dims imply {need}"
                ));
            }
            let off_off = payload_off;
            let adj_off = off_off + (n + 1) * 8;
            let offsets = usize_section(&map, off_off, n + 1, "offsets")?;
            let adj = u32_section(&map, adj_off, arcs, "adj")?;
            if offsets.last() != Some(&arcs) {
                return Err("offsets do not end at the arc count".into());
            }
            Ok(Decoded::Graph(CsrGraph::from_parts(n, offsets, adj)))
        }
        other => Err(format!("unknown snapshot kind {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Csr {
        cubie_sparse::generators::random_sparse(40, 30, 200, 7)
    }

    fn sample_graph() -> CsrGraph {
        cubie_graph::generators::grid_graph(7, 9)
    }

    fn roundtrip(bytes: Vec<u8>, key: &str) -> Decoded {
        let map = Arc::new(Mapping::from_bytes(bytes));
        decode(map, Some(key)).unwrap()
    }

    #[test]
    fn fnv_bytes_matches_published_vectors() {
        assert_eq!(fnv1a64_bytes(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64_bytes(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn matrix_roundtrips_bit_identically() {
        let m = sample_matrix();
        let Decoded::Matrix(back) = roundtrip(encode_matrix("k", &m), "k") else {
            panic!("wrong kind");
        };
        assert_eq!(back, m);
        for (a, b) in back.vals.iter().zip(m.vals.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn graph_roundtrips_bit_identically() {
        let g = sample_graph();
        let Decoded::Graph(back) = roundtrip(encode_graph("gk", &g), "gk") else {
            panic!("wrong kind");
        };
        assert_eq!(back, g);
    }

    #[test]
    fn truncation_is_detected() {
        let mut bytes = encode_matrix("k", &sample_matrix());
        bytes.truncate(bytes.len() - 3);
        let map = Arc::new(Mapping::from_bytes(bytes));
        let err = decode(map, Some("k")).err().unwrap();
        assert!(err.contains("length mismatch"), "{err}");
    }

    #[test]
    fn bit_rot_is_detected_by_checksum() {
        let mut bytes = encode_matrix("k", &sample_matrix());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let map = Arc::new(Mapping::from_bytes(bytes));
        let err = decode(map, Some("k")).err().unwrap();
        assert!(err.contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn key_mismatch_is_detected() {
        let bytes = encode_graph("stored-key", &sample_graph());
        let map = Arc::new(Mapping::from_bytes(bytes));
        let err = decode(map, Some("other-key")).err().unwrap();
        assert!(err.contains("key mismatch"), "{err}");
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = encode_graph("k", &sample_graph());
        bytes[0] = b'X';
        let map = Arc::new(Mapping::from_bytes(bytes));
        assert!(decode(map, None).err().unwrap().contains("bad magic"));
    }

    #[test]
    fn zero_copy_sections_borrow_the_mapping() {
        if !ZERO_COPY_OK {
            return;
        }
        let m = sample_matrix();
        let Decoded::Matrix(back) = roundtrip(encode_matrix("k", &m), "k") else {
            panic!("wrong kind");
        };
        assert!(back.row_ptr.is_mapped());
        assert!(back.col_idx.is_mapped());
        assert!(back.vals.is_mapped());
    }
}
