//! # cubie-prep
//!
//! The persistent prepared-input store: content-addressed, mmap-backed
//! snapshots of the Table 4 sparse matrices and Table 3 graphs under
//! `results/prep/`, shared by every entry point (CLI sweeps, benches,
//! tests, `cubied`).
//!
//! Cold path: generation fans out across the worker pool ([`par_map_lpt`],
//! heaviest case first) and each generated case is recorded as one
//! atomic snapshot. Warm path: the snapshot is mapped and the case is
//! reconstructed as a **zero-copy borrowed view** over the file — the
//! index/value slabs kernels see are windows of the mapping, so a warm
//! restart pays open + validate, not regenerate + copy.
//!
//! Correctness before speed: every snapshot embeds its canonical key
//! and a payload checksum; truncated, bit-rotted, or version-skewed
//! entries are detected at open, logged, deleted, and regenerated —
//! never a panic, never a silent wrong-input run. Generators are
//! deterministic, so loaded cases are bit-identical to fresh ones (the
//! `prep_store_identity` suite and the golden gates enforce this).
//!
//! Knobs (read once per call, so tests can flip them):
//!
//! * `CUBIE_PREP_CACHE=off` — bypass the store entirely (generate
//!   in-memory, still parallel). Default: on.
//! * `CUBIE_PREP_DIR=<path>` — store directory. Default:
//!   `results/prep` under the current directory.
//! * `CUBIE_PREP_MMAP=off` — read snapshots into owned buffers instead
//!   of mapping them (same decode path, one copy). Default: mmap.
//!
//! Observability: `prep.hit` / `prep.miss` / `prep.invalidated` /
//! `prep.store_err` counters, `prep.bytes_mapped` / `prep.bytes_written`
//! byte counters, and one `prep:` log line per table load — all through
//! [`cubie_obs`].
//!
//! [`par_map_lpt`]: cubie_core::par::par_map_lpt

#![warn(missing_docs)]

pub mod format;
pub mod store;

use std::path::PathBuf;

use cubie_core::par::par_map_lpt;
use cubie_graph::csr_graph::CsrGraph;
use cubie_graph::generators as graph_gen;
use cubie_graph::generators::GraphInfo;
use cubie_sparse::generators as sparse_gen;
use cubie_sparse::generators::MatrixInfo;
use cubie_sparse::Csr;

pub use format::Decoded;
pub use store::{LoadMode, Lookup, OpenReport, PrepKey, PrepStore};

/// Resolved store configuration: what a load/generate call should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepConfig {
    /// Whether the on-disk store is consulted at all
    /// (`CUBIE_PREP_CACHE`, default on).
    pub enabled: bool,
    /// Store directory (`CUBIE_PREP_DIR`, default `results/prep`).
    pub dir: PathBuf,
    /// How snapshot bytes are brought in on a hit (`CUBIE_PREP_MMAP`).
    pub mode: LoadMode,
}

impl PrepConfig {
    /// The default config: store enabled at `results/prep`, mmap loads.
    pub fn new() -> PrepConfig {
        PrepConfig {
            enabled: true,
            dir: PathBuf::from("results/prep"),
            mode: LoadMode::Mmap,
        }
    }

    /// Resolve the config from the environment knobs (see crate docs).
    pub fn from_env() -> PrepConfig {
        let mut cfg = PrepConfig::new();
        if let Ok(v) = std::env::var("CUBIE_PREP_CACHE") {
            cfg.enabled = !matches!(v.as_str(), "off" | "0" | "false");
        }
        if let Ok(v) = std::env::var("CUBIE_PREP_DIR") {
            if !v.is_empty() {
                cfg.dir = PathBuf::from(v);
            }
        }
        if let Ok(v) = std::env::var("CUBIE_PREP_MMAP") {
            if matches!(v.as_str(), "off" | "0" | "false") {
                cfg.mode = LoadMode::Copied;
            }
        }
        cfg
    }

    /// A disabled config (always generate in-memory).
    pub fn disabled() -> PrepConfig {
        PrepConfig {
            enabled: false,
            ..PrepConfig::new()
        }
    }
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig::new()
    }
}

/// One table-load's hit/miss accounting (also logged and mirrored into
/// the `prep.*` counters).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LoadReport {
    /// Cases served from snapshots.
    pub hits: usize,
    /// Cases generated (and recorded when the store is enabled).
    pub misses: usize,
    /// Snapshots deleted for corruption/skew during this load.
    pub invalidated: usize,
    /// Bytes served via mapped (or copied) snapshots.
    pub bytes_loaded: u64,
    /// Bytes written for newly recorded snapshots.
    pub bytes_written: u64,
}

/// The five Table 4 matrices, through the store configured by the
/// environment. Output (order and bits) is identical to
/// [`sparse_gen::table4_matrices`].
pub fn table4_matrices(scale: usize) -> Vec<(MatrixInfo, Csr)> {
    table4_matrices_with(&PrepConfig::from_env(), scale).0
}

/// The five Table 3 graphs, through the store configured by the
/// environment. Output (order and bits) is identical to
/// [`graph_gen::table3_graphs`].
pub fn table3_graphs(scale: usize) -> Vec<(GraphInfo, CsrGraph)> {
    table3_graphs_with(&PrepConfig::from_env(), scale).0
}

/// [`table4_matrices`] with an explicit config (tests pass temp dirs
/// and forced modes here instead of mutating the environment).
pub fn table4_matrices_with(
    cfg: &PrepConfig,
    scale: usize,
) -> (Vec<(MatrixInfo, Csr)>, LoadReport) {
    let specs = sparse_gen::table4_specs().to_vec();
    cached_table(
        cfg,
        "matrices",
        &specs,
        |spec| PrepKey::matrix(spec.name, scale),
        |spec| spec.nnz as f64,
        |spec| sparse_gen::generate(spec.name, scale),
        |loaded| match loaded {
            Decoded::Matrix(m) => Some(m),
            Decoded::Graph(_) => None,
        },
        |store, key, m| store.save_matrix(key, m),
    )
}

/// [`table3_graphs`] with an explicit config.
pub fn table3_graphs_with(
    cfg: &PrepConfig,
    scale: usize,
) -> (Vec<(GraphInfo, CsrGraph)>, LoadReport) {
    let specs = graph_gen::table3_specs().to_vec();
    cached_table(
        cfg,
        "graphs",
        &specs,
        |spec| PrepKey::graph(spec.name, scale),
        |spec| spec.edges as f64,
        |spec| graph_gen::generate(spec.name, scale),
        |loaded| match loaded {
            Decoded::Graph(g) => Some(g),
            Decoded::Matrix(_) => None,
        },
        |store, key, g| store.save_graph(key, g),
    )
}

/// The shared load-or-generate engine: try every key against the store,
/// fan misses out with LPT-ordered [`par_map_lpt`], record what was
/// generated, and return cases in spec order — bit-identical to a pure
/// generation run, whatever mix of hits and misses happened.
#[allow(clippy::too_many_arguments)]
fn cached_table<S: Copy + Sync, T: Send>(
    cfg: &PrepConfig,
    what: &str,
    specs: &[S],
    key_of: impl Fn(&S) -> PrepKey,
    cost_of: impl Fn(&S) -> f64 + Sync,
    generate: impl Fn(&S) -> T + Sync,
    downcast: impl Fn(Decoded) -> Option<T>,
    save: impl Fn(&PrepStore, &PrepKey, &T) -> std::io::Result<std::path::PathBuf>,
) -> (Vec<(S, T)>, LoadReport) {
    let mut report = LoadReport::default();
    let store = if cfg.enabled {
        match PrepStore::open_unchecked(&cfg.dir) {
            Ok(s) => Some(s),
            Err(e) => {
                cubie_obs::counter_add("prep.store_err", 1);
                cubie_obs::log(format!(
                    "prep: store at {} unavailable ({e}); generating in-memory",
                    cfg.dir.display()
                ));
                None
            }
        }
    } else {
        None
    };

    // Phase 1 — consult the store (cheap: open + validate + map).
    let mut out: Vec<Option<T>> = specs.iter().map(|_| None).collect();
    if let Some(store) = &store {
        for (slot, spec) in specs.iter().enumerate() {
            let key = key_of(spec);
            match store.load(&key, cfg.mode) {
                Lookup::Hit(loaded) => {
                    if let Some(case) = downcast(loaded.case) {
                        report.hits += 1;
                        report.bytes_loaded += loaded.bytes;
                        out[slot] = Some(case);
                    } else {
                        // Address collision across kinds — astronomically
                        // unlikely, but treat as a miss, never mis-serve.
                        cubie_obs::log(format!(
                            "prep: entry at {} holds the wrong case kind; regenerating",
                            key.address()
                        ));
                    }
                }
                Lookup::Miss => {}
                Lookup::Invalidated(reason) => {
                    report.invalidated += 1;
                    cubie_obs::log(format!(
                        "prep: invalidated snapshot {}: {reason}",
                        key.address()
                    ));
                }
            }
        }
    }

    // Phase 2 — generate what's missing, heaviest first, in parallel.
    let missing: Vec<usize> = (0..specs.len()).filter(|&i| out[i].is_none()).collect();
    report.misses = missing.len();
    let generated = par_map_lpt(
        missing.len(),
        |i| cost_of(&specs[missing[i]]),
        |i| generate(&specs[missing[i]]),
    );
    for (&slot, case) in missing.iter().zip(generated) {
        if let Some(store) = &store {
            let key = key_of(&specs[slot]);
            match save(store, &key, &case) {
                Ok(path) => {
                    report.bytes_written += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                }
                Err(e) => {
                    cubie_obs::counter_add("prep.store_err", 1);
                    cubie_obs::log(format!(
                        "prep: failed to record snapshot {}: {e}",
                        key.address()
                    ));
                }
            }
        }
        out[slot] = Some(case);
    }

    cubie_obs::counter_add("prep.hit", report.hits as u64);
    cubie_obs::counter_add("prep.miss", report.misses as u64);
    cubie_obs::counter_add("prep.invalidated", report.invalidated as u64);
    cubie_obs::counter_add("prep.bytes_mapped", report.bytes_loaded);
    cubie_obs::counter_add("prep.bytes_written", report.bytes_written);
    if store.is_some() {
        cubie_obs::log(format!(
            "prep: {what} hits={} misses={} invalidated={} loaded={}B written={}B",
            report.hits,
            report.misses,
            report.invalidated,
            report.bytes_loaded,
            report.bytes_written
        ));
    }

    let cases = specs
        .iter()
        .copied()
        .zip(out.into_iter().map(|o| o.expect("every slot filled")))
        .collect();
    (cases, report)
}

/// Revalidate (and page-cache-warm) the store without generating
/// anything — what `cubied` runs at startup so a restarted daemon
/// serves its first sweep from mapped snapshots. Missing directory is
/// fine (fresh report); errors are logged and swallowed.
pub fn prewarm(cfg: &PrepConfig) -> OpenReport {
    if !cfg.enabled {
        return OpenReport::default();
    }
    match PrepStore::open(&cfg.dir) {
        Ok((_, report)) => {
            cubie_obs::counter_add("prep.prewarm_kept", report.kept as u64);
            cubie_obs::counter_add("prep.prewarm_bytes", report.kept_bytes);
            cubie_obs::counter_add("prep.invalidated", report.removed_invalid as u64);
            report
        }
        Err(e) => {
            cubie_obs::counter_add("prep.store_err", 1);
            cubie_obs::log(format!(
                "prep: prewarm of {} failed: {e}",
                cfg.dir.display()
            ));
            OpenReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_cfg(tag: &str) -> PrepConfig {
        let dir = std::env::temp_dir().join(format!("cubie_prep_lib_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PrepConfig {
            enabled: true,
            dir,
            mode: LoadMode::Mmap,
        }
    }

    #[test]
    fn disabled_config_matches_plain_generation() {
        let (cases, report) = table4_matrices_with(&PrepConfig::disabled(), 128);
        let plain = sparse_gen::table4_matrices(128);
        assert_eq!(report.hits, 0);
        assert_eq!(cases.len(), plain.len());
        for ((ia, ma), (ib, mb)) in cases.iter().zip(&plain) {
            assert_eq!(ia.name, ib.name);
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn cold_then_warm_matrices_are_bit_identical() {
        let cfg = tmp_cfg("warm_mat");
        let (cold, r1) = table4_matrices_with(&cfg, 128);
        assert_eq!(r1.misses, 5);
        assert_eq!(r1.hits, 0);
        let (warm, r2) = table4_matrices_with(&cfg, 128);
        assert_eq!(r2.hits, 5);
        assert_eq!(r2.misses, 0);
        for ((ia, ma), (ib, mb)) in cold.iter().zip(&warm) {
            assert_eq!(ia, ib);
            assert_eq!(ma, mb);
            for (a, b) in ma.vals.iter().zip(mb.vals.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        if format::ZERO_COPY_OK {
            assert!(warm[0].1.is_mapped(), "warm case should borrow the map");
            assert!(!cold[0].1.is_mapped(), "cold case owns its buffers");
        }
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn cold_then_warm_graphs_are_bit_identical() {
        let cfg = tmp_cfg("warm_graph");
        let (cold, r1) = table3_graphs_with(&cfg, 1024);
        assert_eq!(r1.misses, 5);
        let (warm, r2) = table3_graphs_with(&cfg, 1024);
        assert_eq!(r2.hits, 5);
        for ((ia, ga), (ib, gb)) in cold.iter().zip(&warm) {
            assert_eq!(ia, ib);
            assert_eq!(ga, gb);
        }
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn copied_mode_serves_identical_cases_without_mmap() {
        let mut cfg = tmp_cfg("copied");
        let (cold, _) = table4_matrices_with(&cfg, 128);
        cfg.mode = LoadMode::Copied;
        let (warm, report) = table4_matrices_with(&cfg, 128);
        assert_eq!(report.hits, 5);
        for ((_, ma), (_, mb)) in cold.iter().zip(&warm) {
            assert_eq!(ma, mb);
        }
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn different_scales_use_different_snapshots() {
        let cfg = tmp_cfg("scales");
        let (_, r1) = table4_matrices_with(&cfg, 128);
        let (_, r2) = table4_matrices_with(&cfg, 256);
        assert_eq!(r1.misses, 5);
        assert_eq!(r2.misses, 5, "a different scale must not hit");
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn prewarm_reports_the_store_contents() {
        let cfg = tmp_cfg("prewarm");
        assert_eq!(prewarm(&cfg), OpenReport::default());
        let (_, _) = table4_matrices_with(&cfg, 128);
        let report = prewarm(&cfg);
        assert_eq!(report.kept, 5);
        assert!(report.kept_bytes > 0);
        let _ = fs::remove_dir_all(&cfg.dir);
    }

    #[test]
    fn prep_config_env_parsing() {
        // Direct construction only — env mutation is reserved for
        // subprocess probes in the integration suite.
        let cfg = PrepConfig::new();
        assert!(cfg.enabled);
        assert_eq!(cfg.mode, LoadMode::Mmap);
        assert_eq!(cfg.dir, PathBuf::from("results/prep"));
    }
}
