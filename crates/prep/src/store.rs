//! The content-addressed snapshot store under `results/prep/`.
//!
//! Same discipline as the `cubied` result store (`crates/serve`), for
//! binary case snapshots instead of JSON artifacts:
//!
//! * **Addressing** — one file per prepared case at
//!   `<dir>/<16-hex-of-fnv1a64(canonical key)>.bin`; the canonical key
//!   folds in the store schema, the generator version, and the on-disk
//!   layout version, so bumping any of them retires every old entry
//!   (it simply stops being addressable) without a migration.
//! * **Crash safety** — writes go to a process-unique `.tmp` sibling,
//!   fsync, rename over the final path, fsync the directory. Two
//!   processes racing the same key each write their own tmp file and
//!   the last rename wins with identical bytes (generation is
//!   deterministic). A kill mid-write leaves a `.tmp` leftover that
//!   [`PrepStore::open`] sweeps out.
//! * **Revalidation** — open sweeps `.tmp` files and structurally
//!   validates every entry (magic, length, checksum, key-hashes-to-
//!   address); the load path additionally pins the full canonical key.
//!   Anything invalid is deleted and reported, never served.

use std::fs::{self, File};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cubie_core::mmap::Mapping;

use crate::format::{self, fnv1a64_bytes, Decoded};

/// Snapshot store schema. Bump when the envelope/addressing changes.
pub const PREP_SCHEMA: &str = "cubie-prep/v1";

/// Version of the deterministic input generators. Bump whenever any
/// Table 3/4 generator changes its output bits — old snapshots stop
/// being addressable and regenerate on next use.
pub const GENERATOR_VERSION: u32 = 1;

/// Version of the on-disk binary layout (`format` module). Bump when
/// the snapshot byte layout changes.
pub const LAYOUT_VERSION: u32 = 1;

/// The canonical key of one prepared case, and its address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepKey {
    canonical: String,
    hash: u64,
}

/// The versioned prefix every currently-valid canonical key starts
/// with; entries recorded under any other prefix are stale.
pub fn current_prefix() -> String {
    format!("{PREP_SCHEMA};gen={GENERATOR_VERSION};layout={LAYOUT_VERSION};")
}

impl PrepKey {
    fn new(kind: &str, name: &str, scale: usize) -> PrepKey {
        let canonical = format!("{}kind={kind};name={name};scale={scale}", current_prefix());
        let hash = fnv1a64_bytes(canonical.as_bytes());
        PrepKey { canonical, hash }
    }

    /// Key of a Table 4 matrix at a scale divisor (shared by SpMV and
    /// SpGEMM — the input is identical, so one snapshot serves both).
    pub fn matrix(name: &str, scale: usize) -> PrepKey {
        PrepKey::new("matrix", name, scale)
    }

    /// Key of a Table 3 graph at a scale divisor.
    pub fn graph(name: &str, scale: usize) -> PrepKey {
        PrepKey::new("graph", name, scale)
    }

    /// The canonical key string (embedded verbatim in the snapshot).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The 16-hex-digit address (file stem under the store directory).
    pub fn address(&self) -> String {
        format!("{:016x}", self.hash)
    }
}

/// How snapshot bytes are brought into memory on a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// `mmap` the file and borrow sections zero-copy (the default).
    Mmap,
    /// Read the file into an owned buffer (`CUBIE_PREP_MMAP=off`) —
    /// same decode path, one copy, no page-cache dependence.
    Copied,
}

/// A successfully loaded snapshot.
pub struct Loaded {
    /// The decoded case.
    pub case: Decoded,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Whether the bytes are served by a live `mmap`.
    pub mmapped: bool,
}

/// What [`PrepStore::load`] found.
pub enum Lookup {
    /// Valid snapshot decoded (zero-copy when mapped).
    Hit(Loaded),
    /// No snapshot at this address.
    Miss,
    /// A snapshot existed but failed validation (truncation, checksum,
    /// key or version skew); it has been deleted and the reason is
    /// carried for counters/logs. Callers regenerate.
    Invalidated(String),
}

/// What [`PrepStore::open`] did while revalidating the directory.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Entries that passed structural validation and were kept.
    pub kept: usize,
    /// Total bytes of the kept entries (read during validation — on a
    /// daemon prewarm this is what pulls the store into the page cache).
    pub kept_bytes: u64,
    /// `.tmp` leftovers of interrupted writes, swept out.
    pub removed_tmp: usize,
    /// Entries deleted for corruption or version skew.
    pub removed_invalid: usize,
}

/// The on-disk snapshot store handle.
#[derive(Debug)]
pub struct PrepStore {
    dir: PathBuf,
}

/// Monotonic discriminator so concurrent saves from one process never
/// share a tmp path (the pid separates processes).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn validate_entry(path: &Path, stem: &str) -> Result<u64, String> {
    let mut file = File::open(path).map_err(|e| format!("unreadable entry: {e}"))?;
    let map = Mapping::of_file(&mut file).map_err(|e| format!("unmappable entry: {e}"))?;
    let len = map.len() as u64;
    let map = Arc::new(map);
    let decoded = format::decode(Arc::clone(&map), None)?;
    // Structure is sound; additionally pin address and version prefix.
    let key = embedded_key(&map)?;
    if !key.starts_with(&current_prefix()) {
        return Err(format!(
            "version skew: entry key `{key}` does not match `{}…`",
            current_prefix()
        ));
    }
    if format!("{:016x}", fnv1a64_bytes(key.as_bytes())) != stem {
        return Err(format!("entry key `{key}` does not hash to its address"));
    }
    drop(decoded);
    Ok(len)
}

/// The canonical key embedded in a (structurally valid) snapshot.
fn embedded_key(map: &Mapping) -> Result<&str, String> {
    let bytes = map.bytes();
    if bytes.len() < 0x40 {
        return Err("truncated header".into());
    }
    let key_len = u32::from_le_bytes(bytes[0x0c..0x10].try_into().unwrap()) as usize;
    if 0x40 + key_len > bytes.len() {
        return Err("key runs past end of file".into());
    }
    std::str::from_utf8(&bytes[0x40..0x40 + key_len])
        .map_err(|_| "embedded key is not UTF-8".into())
}

impl PrepStore {
    /// Open (creating if needed) the store directory and revalidate its
    /// contents: sweep `.tmp` leftovers, delete corrupt or
    /// version-skewed snapshots. Reading every kept entry end to end
    /// (checksums) doubles as the daemon's prewarm — the surviving
    /// snapshots are in the page cache when `open` returns.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<(PrepStore, OpenReport)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut report = OpenReport::default();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(n) => n.to_string(),
                None => continue,
            };
            if name.ends_with(".tmp") {
                fs::remove_file(&path)?;
                report.removed_tmp += 1;
                continue;
            }
            let Some(stem) = name.strip_suffix(".bin") else {
                continue; // not ours; leave it alone
            };
            match validate_entry(&path, stem) {
                Ok(bytes) => {
                    report.kept += 1;
                    report.kept_bytes += bytes;
                }
                Err(reason) => {
                    fs::remove_file(&path)?;
                    report.removed_invalid += 1;
                    cubie_obs::log(format!("prep: store dropped {name}: {reason}"));
                }
            }
        }
        Ok((PrepStore { dir }, report))
    }

    /// Open the directory **without** revalidating existing entries —
    /// the per-lookup validation in [`PrepStore::load`] still catches
    /// anything invalid at the address actually used. This is the
    /// cheap constructor the generation wrappers use on every call.
    pub fn open_unchecked(dir: impl Into<PathBuf>) -> io::Result<PrepStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(PrepStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The final on-disk path of a key.
    pub fn path_for(&self, key: &PrepKey) -> PathBuf {
        self.dir.join(format!("{}.bin", key.address()))
    }

    /// Look up a key. Truncated, bit-rotted, skewed, or mismatched
    /// snapshots are deleted and reported as [`Lookup::Invalidated`] —
    /// callers treat that as a miss and regenerate.
    pub fn load(&self, key: &PrepKey, mode: LoadMode) -> Lookup {
        let path = self.path_for(key);
        let mut file = match File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            Err(e) => return Lookup::Invalidated(format!("unreadable entry: {e}")),
        };
        let map = match mode {
            LoadMode::Mmap => Mapping::of_file(&mut file),
            LoadMode::Copied => Mapping::owned_copy(&mut file),
        };
        let map = match map {
            Ok(m) => Arc::new(m),
            Err(e) => return Lookup::Invalidated(format!("unmappable entry: {e}")),
        };
        let bytes = map.len() as u64;
        let mmapped = map.is_mmap();
        match format::decode(Arc::clone(&map), Some(key.canonical())) {
            Ok(case) => Lookup::Hit(Loaded {
                case,
                bytes,
                mmapped,
            }),
            Err(reason) => {
                let _ = fs::remove_file(&path);
                Lookup::Invalidated(reason)
            }
        }
    }

    /// Persist encoded snapshot bytes under a key, atomically: write to
    /// a process-unique `.tmp` sibling → fsync → rename over the final
    /// path → fsync the directory. Concurrent writers of the same key
    /// never share a tmp file; the last rename wins with identical
    /// bytes. Returns the final path.
    pub fn save_bytes(&self, key: &PrepKey, encoded: &[u8]) -> io::Result<PathBuf> {
        let path = self.path_for(key);
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            key.address(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        {
            let mut f = File::create(&tmp)?;
            io::Write::write_all(&mut f, encoded)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // Persist the rename itself: fsync the directory so a crash
        // immediately after `save` cannot resurrect the old state.
        File::open(&self.dir)?.sync_all()?;
        Ok(path)
    }

    /// Serialize and persist a matrix snapshot.
    pub fn save_matrix(&self, key: &PrepKey, m: &cubie_sparse::Csr) -> io::Result<PathBuf> {
        self.save_bytes(key, &format::encode_matrix(key.canonical(), m))
    }

    /// Serialize and persist a graph snapshot.
    pub fn save_graph(
        &self,
        key: &PrepKey,
        g: &cubie_graph::csr_graph::CsrGraph,
    ) -> io::Result<PathBuf> {
        self.save_bytes(key, &format::encode_graph(key.canonical(), g))
    }

    /// Number of committed snapshots currently in the store.
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().map(|x| x == "bin").unwrap_or(false))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no committed snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cubie_prep_store_{}_{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn matrix() -> cubie_sparse::Csr {
        cubie_sparse::generators::random_sparse(50, 50, 300, 11)
    }

    #[test]
    fn key_addresses_are_stable_and_distinct() {
        let a = PrepKey::matrix("spmsrts", 64);
        let b = PrepKey::matrix("spmsrts", 32);
        let c = PrepKey::graph("spmsrts", 64);
        assert_eq!(a, PrepKey::matrix("spmsrts", 64));
        assert_ne!(a.address(), b.address());
        assert_ne!(a.address(), c.address());
        assert_eq!(a.address().len(), 16);
        assert!(a.canonical().starts_with(&current_prefix()));
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let (store, report) = PrepStore::open(&dir).unwrap();
        assert_eq!(report, OpenReport::default());
        let key = PrepKey::matrix("test", 4);
        assert!(matches!(store.load(&key, LoadMode::Mmap), Lookup::Miss));
        let m = matrix();
        store.save_matrix(&key, &m).unwrap();
        match store.load(&key, LoadMode::Mmap) {
            Lookup::Hit(loaded) => {
                let Decoded::Matrix(back) = loaded.case else {
                    panic!("wrong kind");
                };
                assert_eq!(back, m);
                #[cfg(all(unix, target_pointer_width = "64"))]
                assert!(loaded.mmapped);
            }
            _ => panic!("expected hit"),
        }
        // Copied mode decodes the same bytes without a live mapping.
        match store.load(&key, LoadMode::Copied) {
            Lookup::Hit(loaded) => {
                assert!(!loaded.mmapped);
                let Decoded::Matrix(back) = loaded.case else {
                    panic!("wrong kind");
                };
                assert_eq!(back, m);
            }
            _ => panic!("expected hit"),
        }
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_invalidated_then_missing() {
        let dir = tmp_dir("corrupt");
        let (store, _) = PrepStore::open(&dir).unwrap();
        let key = PrepKey::matrix("test", 4);
        store.save_matrix(&key, &matrix()).unwrap();
        let path = store.path_for(&key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load(&key, LoadMode::Mmap),
            Lookup::Invalidated(_)
        ));
        assert!(!path.exists(), "invalidated snapshot must be deleted");
        assert!(matches!(store.load(&key, LoadMode::Mmap), Lookup::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_tmp_and_invalid_entries() {
        let dir = tmp_dir("sweep");
        let (store, _) = PrepStore::open(&dir).unwrap();
        let key = PrepKey::matrix("test", 4);
        store.save_matrix(&key, &matrix()).unwrap();
        fs::write(dir.join("0123456789abcdef.0.0.tmp"), "partial").unwrap();
        fs::write(dir.join("00000000deadbeef.bin"), "not a snapshot").unwrap();
        fs::write(dir.join("README"), "unrelated file, left alone").unwrap();
        let (_, report) = PrepStore::open(&dir).unwrap();
        assert_eq!(report.kept, 1);
        assert!(report.kept_bytes > 0);
        assert_eq!(report.removed_tmp, 1);
        assert_eq!(report.removed_invalid, 1);
        assert!(store.path_for(&key).exists());
        assert!(dir.join("README").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_skewed_entry_is_dropped_at_open_and_load() {
        let dir = tmp_dir("skew");
        let (store, _) = PrepStore::open(&dir).unwrap();
        let key = PrepKey::matrix("test", 4);
        store.save_matrix(&key, &matrix()).unwrap();
        // Doctor the snapshot as a previous generator version would have
        // written it: rewrite the embedded key (same length, so the
        // structure stays sound) and recompute nothing else — the load
        // path must reject it on the key, not the checksum.
        let path = store.path_for(&key);
        let text = format!("gen={GENERATOR_VERSION}");
        let mut bytes = fs::read(&path).unwrap();
        let pos = bytes
            .windows(text.len())
            .position(|w| w == text.as_bytes())
            .unwrap();
        bytes[pos + 4] = b'0'; // gen=1 → gen=0
        fs::write(&path, &bytes).unwrap();
        match store.load(&key, LoadMode::Mmap) {
            Lookup::Invalidated(reason) => assert!(reason.contains("key mismatch"), "{reason}"),
            _ => panic!("expected invalidation"),
        }
        assert!(!path.exists());
        // Same doctored entry dropped by open-time revalidation too.
        store.save_matrix(&key, &matrix()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[pos + 4] = b'0';
        fs::write(&path, &bytes).unwrap();
        let (_, report) = PrepStore::open(&dir).unwrap();
        assert_eq!(report.removed_invalid, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_saves_to_one_key_both_succeed() {
        let dir = tmp_dir("race");
        let (store, _) = PrepStore::open(&dir).unwrap();
        let store = std::sync::Arc::new(store);
        let key = PrepKey::matrix("race", 4);
        let m = matrix();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = std::sync::Arc::clone(&store);
                let key = key.clone();
                let m = m.clone();
                std::thread::spawn(move || store.save_matrix(&key, &m).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        match store.load(&key, LoadMode::Mmap) {
            Lookup::Hit(loaded) => {
                let Decoded::Matrix(back) = loaded.case else {
                    panic!("wrong kind");
                };
                assert_eq!(back, m);
            }
            _ => panic!("expected hit after racing saves"),
        }
        // No tmp leftovers once every writer has finished.
        let tmps = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.path().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
