//! `prep-*` criterion group: cold generation vs snapshot loads.
//!
//! Quantifies the tentpole claim — a warm mmap load of a Table 4 matrix
//! should beat regenerating it by a wide margin — and keeps the copied
//! (no-mmap) load measured so the zero-copy win stays visible.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use cubie_prep::{table4_matrices_with, LoadMode, PrepConfig};

const SCALE: usize = 16;

fn bench_cfg(tag: &str) -> PrepConfig {
    let dir = std::env::temp_dir().join(format!("cubie_prep_bench_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    PrepConfig {
        enabled: true,
        dir,
        mode: LoadMode::Mmap,
    }
}

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    g
}

/// prep-cold: generate the Table 4 set in memory (no store).
fn prep_cold_generate(c: &mut Criterion) {
    let cfg = PrepConfig::disabled();
    let mut g = quick(c, "prep-cold");
    g.bench_function("table4_generate", |b| {
        b.iter(|| std::hint::black_box(table4_matrices_with(&cfg, SCALE)))
    });
    g.finish();
}

/// prep-warm: serve the same set from snapshots, mmap'd vs copied.
fn prep_warm_load(c: &mut Criterion) {
    let mut cfg = bench_cfg("warm");
    // Populate once; every timed iteration is then a pure warm load.
    let _ = table4_matrices_with(&cfg, SCALE);
    let mut g = quick(c, "prep-warm");
    g.bench_function("table4_mmap_load", |b| {
        b.iter(|| std::hint::black_box(table4_matrices_with(&cfg, SCALE)))
    });
    cfg.mode = LoadMode::Copied;
    g.bench_function("table4_copied_load", |b| {
        b.iter(|| std::hint::black_box(table4_matrices_with(&cfg, SCALE)))
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

criterion_group!(benches, prep_cold_generate, prep_warm_load);
criterion_main!(benches);
